#include "obs/report.hh"

#include <algorithm>
#include <array>
#include <sstream>
#include <unordered_map>

#include "util/logging.hh"
#include "util/table.hh"

namespace parendi::obs {

namespace {

constexpr size_t kWorkPhases =
    static_cast<size_t>(Phase::BarrierWait); // ...incl. fused Publish

/// A cycle is aggregatable once the four classic phases are seen;
/// Publish only exists on the fused path and is optional.
constexpr uint8_t kRequiredPhases =
    (uint8_t{1} << static_cast<size_t>(Phase::Commit)) |
    (uint8_t{1} << static_cast<size_t>(Phase::Latch)) |
    (uint8_t{1} << static_cast<size_t>(Phase::Exchange)) |
    (uint8_t{1} << static_cast<size_t>(Phase::Eval));

struct CycleAgg
{
    uint64_t spanTicks = 0;
    bool hasSpan = false;
    uint8_t phasesSeen = 0;     ///< bitmask over the work phases
    std::array<uint64_t, kWorkPhases> maxTicks{};
};

/** Percentile of a sorted vector (nearest-rank). */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t i = static_cast<size_t>(
        static_cast<double>(sorted.size() - 1) * p);
    return sorted[i];
}

void
appendHistogram(std::ostringstream &out, const std::vector<double> &v,
                double maxv)
{
    if (v.empty() || maxv <= 0)
        return;
    const int buckets = 10;
    std::vector<size_t> hist(buckets, 0);
    for (double x : v) {
        size_t b = static_cast<size_t>(x / (maxv * 1.0001) * buckets);
        ++hist[std::min<size_t>(b, buckets - 1)];
    }
    size_t top = *std::max_element(hist.begin(), hist.end());
    for (int b = 0; b < buckets; ++b) {
        size_t bar = top ? hist[b] * 40 / top : 0;
        out << strprintf("  [%3d%%-%3d%%] %-40s %zu\n", b * 10,
                         (b + 1) * 10,
                         std::string(bar, '#').c_str(), hist[b]);
    }
}

} // namespace

ProfileReport
buildReport(const SuperstepProfiler &prof)
{
    ProfileReport rep;
    rep.cyclesTotal = prof.cyclesSeen();
    rep.workers = prof.workers();
    rep.shards = prof.shards();
    rep.workerWorkSec.assign(rep.workers, 0);
    rep.workerBarrierSec.assign(rep.workers, 0);
    rep.counters = prof.counters().snapshot();

    // Pass 1: which sampled cycles are fully aggregatable? A cycle
    // needs its span (cycle ring) and at least one sample of every
    // work phase (the phase rings wrap ~5x faster than the cycle
    // ring, so the oldest spans may have lost their phases — those
    // would misreport all work as t_sync residual).
    std::unordered_map<uint64_t, CycleAgg> agg;
    const SampleRing &cring = prof.cycleRing();
    for (size_t i = 0; i < cring.size(); ++i) {
        const Sample &s = cring.at(i);
        CycleAgg &a = agg[s.cycle];
        a.spanTicks = s.t1 - s.t0;
        a.hasSpan = true;
    }
    for (uint32_t w = 0; w < rep.workers; ++w) {
        const SampleRing &ring = prof.ring(w);
        for (size_t i = 0; i < ring.size(); ++i) {
            const Sample &s = ring.at(i);
            auto it = agg.find(s.cycle);
            if (it == agg.end())
                continue;
            size_t p = static_cast<size_t>(s.phase);
            if (p >= kWorkPhases)
                continue;
            it->second.phasesSeen |= uint8_t{1} << p;
            it->second.maxTicks[p] =
                std::max(it->second.maxTicks[p], s.t1 - s.t0);
        }
    }

    auto included = [](const CycleAgg &a) {
        return a.hasSpan &&
            (a.phasesSeen & kRequiredPhases) == kRequiredPhases;
    };

    // Pass 2: accumulate.
    std::array<double, kWorkPhases> phaseSec{};
    double residualSec = 0;
    for (const auto &[cycle, a] : agg) {
        (void)cycle;
        if (!included(a))
            continue;
        ++rep.cyclesSampled;
        double span = ticksToSeconds(a.spanTicks);
        rep.sampledWallSec += span;
        double work = 0;
        for (size_t p = 0; p < kWorkPhases; ++p)
            work += ticksToSeconds(a.maxTicks[p]);
        // On the phased path the barriers serialize the phases, so
        // the straggler maxima tile the span and sum below it. On the
        // fused path phases of *different* workers overlap (worker A
        // evaluates while worker B commits), so their maxima can
        // overshoot the span; normalize to the span in that case so
        // the decomposition stays a partition of measured wall time.
        double scale = work > span && work > 0 ? span / work : 1.0;
        for (size_t p = 0; p < kWorkPhases; ++p)
            phaseSec[p] += ticksToSeconds(a.maxTicks[p]) * scale;
        residualSec += std::max(0.0, span - work * scale);
    }
    rep.commitSec = phaseSec[static_cast<size_t>(Phase::Commit)];
    rep.latchSec = phaseSec[static_cast<size_t>(Phase::Latch)];
    rep.exchangeSec = phaseSec[static_cast<size_t>(Phase::Exchange)];
    rep.evalSec = phaseSec[static_cast<size_t>(Phase::Eval)];
    rep.publishSec = phaseSec[static_cast<size_t>(Phase::Publish)];
    rep.tCompSec = rep.evalSec + rep.latchSec;
    rep.tCommSec = rep.commitSec + rep.exchangeSec + rep.publishSec;
    // The residual of the cycle span is synchronization only when
    // there is something to synchronize. A single worker has no
    // barrier: its residual is measurement overhead (sampling
    // timestamps, the step loop between phase records) and is
    // reported as such instead of as a phantom t_sync.
    if (rep.workers > 1) {
        rep.tSyncSec = residualSec;
        rep.overheadSec = 0;
    } else {
        rep.tSyncSec = 0;
        rep.overheadSec = residualSec;
    }

    // Per-worker totals over the included cycles.
    for (uint32_t w = 0; w < rep.workers; ++w) {
        const SampleRing &ring = prof.ring(w);
        for (size_t i = 0; i < ring.size(); ++i) {
            const Sample &s = ring.at(i);
            auto it = agg.find(s.cycle);
            if (it == agg.end() || !included(it->second))
                continue;
            double d = ticksToSeconds(s.t1 - s.t0);
            if (s.phase == Phase::BarrierWait)
                rep.workerBarrierSec[w] += d;
            else
                rep.workerWorkSec[w] += d;
        }
    }

    const std::vector<ShardEvalStat> &sh = prof.shardEval();
    rep.shardEvalNs.reserve(sh.size());
    for (const ShardEvalStat &st : sh)
        rep.shardEvalNs.push_back(
            st.samples
                ? ticksToSeconds(st.ticks) * 1e9 /
                    static_cast<double>(st.samples)
                : 0);
    return rep;
}

std::string
formatReport(const ProfileReport &rep)
{
    std::ostringstream out;
    double n = rep.cyclesSampled
        ? static_cast<double>(rep.cyclesSampled) : 1;

    out << "== measured r_cycle decomposition ==\n";
    out << strprintf("  %llu cycles simulated, %llu sampled and "
                     "aggregated; %u worker(s), %zu shard(s)\n",
                     static_cast<unsigned long long>(rep.cyclesTotal),
                     static_cast<unsigned long long>(rep.cyclesSampled),
                     rep.workers, rep.shards);
    out << strprintf("  per RTL cycle: t_comp %.1f + t_comm %.1f + "
                     "t_sync %.1f + overhead %.1f = %.1f us -> "
                     "%.2f kHz measured\n",
                     rep.tCompSec * 1e6 / n, rep.tCommSec * 1e6 / n,
                     rep.tSyncSec * 1e6 / n, rep.overheadSec * 1e6 / n,
                     rep.sampledWallSec * 1e6 / n, rep.rateKHz());
    out << strprintf("  supersteps (straggler wall): commit %.2f, "
                     "latch %.2f, exchange %.2f, eval %.2f, "
                     "publish %.2f us\n",
                     rep.commitSec * 1e6 / n, rep.latchSec * 1e6 / n,
                     rep.exchangeSec * 1e6 / n, rep.evalSec * 1e6 / n,
                     rep.publishSec * 1e6 / n);

    if (rep.workers > 1) {
        Table t({"worker", "work us/cyc", "barrier us/cyc",
                 "wait share"});
        for (uint32_t w = 0; w < rep.workers; ++w) {
            double work = rep.workerWorkSec[w] * 1e6 / n;
            double wait = rep.workerBarrierSec[w] * 1e6 / n;
            double share = (work + wait) > 0
                ? wait / (work + wait) : 0;
            t.row()
                .cell(static_cast<int>(w))
                .cell(work, 2)
                .cell(wait, 2)
                .cell(strprintf("%.0f%%", share * 100));
        }
        out << "== per-worker superstep balance (sampled) ==\n";
        out << t.str();
    }

    // Measured straggler picture: per-shard mean eval ns/cycle.
    std::vector<double> evals;
    for (double v : rep.shardEvalNs)
        if (v > 0)
            evals.push_back(v);
    if (!evals.empty()) {
        std::sort(evals.begin(), evals.end());
        double mean = 0;
        for (double v : evals)
            mean += v;
        mean /= static_cast<double>(evals.size());
        double maxv = evals.back();
        out << "== per-shard eval stragglers (measured ns per RTL "
               "cycle) ==\n";
        out << strprintf("  min %.0f / p50 %.0f / p90 %.0f / max %.0f "
                         "(straggler), imbalance %.2fx over %zu "
                         "shard(s)\n",
                         evals.front(), percentile(evals, 0.5),
                         percentile(evals, 0.9), maxv,
                         mean > 0 ? maxv / mean : 0, evals.size());
        appendHistogram(out, evals, maxv);
    }

    if (!rep.counters.empty()) {
        out << "== counters ==\n";
        for (const auto &[name, value] : rep.counters)
            out << strprintf("  %-28s %llu\n", name.c_str(),
                             static_cast<unsigned long long>(value));
    }
    return out.str();
}

std::string
formatModeledVsMeasured(const ModeledSplit &modeled,
                        const ProfileReport &measured)
{
    std::ostringstream out;
    double mtot = modeled.total();
    double wtot = measured.sampledWallSec;
    double n = measured.cyclesSampled
        ? static_cast<double>(measured.cyclesSampled) : 1;
    auto pct = [](double x, double tot) {
        return tot > 0 ? x / tot * 100 : 0;
    };

    Table t({"component",
             strprintf("modeled (%s)", modeled.unit.c_str()),
             "modeled %", "measured (us)", "measured %"});
    struct RowDef
    {
        const char *name;
        double model;
        double meas;
    };
    const RowDef rows[] = {
        {"t_comp", modeled.comp, measured.tCompSec},
        {"t_comm", modeled.comm, measured.tCommSec},
        {"t_sync", modeled.sync, measured.tSyncSec},
        // The model has no notion of measurement overhead; the row
        // keeps the measured column summing to its total.
        {"overhead", 0, measured.overheadSec},
        {"total", mtot, wtot},
    };
    for (const RowDef &r : rows) {
        t.row()
            .cell(r.name)
            .cell(r.model, 1)
            .cell(strprintf("%.1f%%", pct(r.model, mtot)))
            .cell(r.meas * 1e6 / n, 2)
            .cell(strprintf("%.1f%%", pct(r.meas, wtot)));
    }
    out << strprintf("== modeled (%s) vs measured r_cycle ==\n",
                     modeled.source.c_str());
    out << t.str();
    out << strprintf("  rate: %.2f kHz modeled vs %.2f kHz measured\n",
                     modeled.rateKHz, measured.rateKHz());
    return out.str();
}

} // namespace parendi::obs
