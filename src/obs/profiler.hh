/**
 * @file
 * SuperstepProfiler: measured r_cycle decomposition for the host
 * engines. The paper's whole analysis hangs on
 *
 *     r_cycle = 1 / (t_sync + t_comm + t_comp)        (Eq. 1)
 *
 * and the IPU machine *models* that split analytically; this profiler
 * *measures* it on whichever engine actually runs, so the model can be
 * validated against reality and a regression can be attributed to the
 * superstep that ate it.
 *
 * Design, in the order the constraints force it:
 *
 *  - Sampling: a full cycle is timestamped only every `sampleEvery`th
 *    cycle (`--profile-every`). On unsampled cycles the hot path pays
 *    one branch per superstep plus the monotonic counters, keeping
 *    steady-state overhead within the <2% budget.
 *  - Per-worker preallocated ring buffers: each worker writes samples
 *    (phase, cycle, raw tick interval) only into its own ring, so
 *    recording is wait-free and allocation-free; rings wrap, keeping
 *    the most recent window for Chrome-trace export.
 *  - Phase attribution: the engines record Commit/Latch/Exchange/Eval
 *    work intervals per worker; barrier-wait intervals come from the
 *    util::BspWaitObserver hooks this class implements. Per-shard
 *    eval durations feed the measured straggler histogram (the
 *    runtime analog of paper Fig. 6a/14).
 *  - Aggregation (obs/report.hh) maps phases onto the paper's terms:
 *    t_comp = eval + latch (tile-local work), t_comm = commit +
 *    exchange (data movement), t_sync = the residual of the sampled
 *    cycle span (barrier release/arrival), so the three terms sum to
 *    measured wall time by construction.
 *
 * Threading contract: beginCycle()/endCycle() are called by the
 * engine's driving thread (pool worker 0); record() only by the worker
 * named in the call, between beginCycle and endCycle; recordShardEval
 * only by the worker currently owning that shard's range. The pool's
 * barriers give the happens-before edges that make reading the rings
 * after a run race-free.
 */

#ifndef PARENDI_OBS_PROFILER_HH
#define PARENDI_OBS_PROFILER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/clock.hh"
#include "obs/counters.hh"
#include "util/bsp_pool.hh"

namespace parendi::obs {

/** The supersteps of one BSP host cycle, plus the barrier wait. */
enum class Phase : uint8_t
{
    Commit = 0,     ///< array write-port broadcasts to replicas
    Latch,          ///< register next -> cur
    Exchange,       ///< owner -> reader register messages
    Eval,           ///< combinational evaluation
    Publish,        ///< fused path: post-eval copy-out to the pub buffer
    BarrierWait,    ///< waiting at a pool barrier (from BspWaitObserver)
    NumPhases
};

const char *phaseName(Phase p);

struct ProfileOptions
{
    /** Timestamp every Nth cycle (1 = every cycle). */
    uint64_t sampleEvery = 16;
    /** Samples retained per worker ring (most recent win). */
    size_t ringCapacity = size_t{1} << 15;
};

/** One timestamped interval on one worker. */
struct Sample
{
    uint64_t t0 = 0;
    uint64_t t1 = 0;
    uint64_t cycle = 0;
    Phase phase = Phase::Eval;
};

/** Fixed-capacity overwrite-oldest sample buffer. Preallocated; a
 *  push never allocates. */
class SampleRing
{
  public:
    explicit SampleRing(size_t capacity)
        : buf_(capacity > 0 ? capacity : 1)
    {
    }

    void
    push(const Sample &s)
    {
        buf_[head_] = s;
        head_ = (head_ + 1) % buf_.size();
        if (size_ < buf_.size())
            ++size_;
    }

    size_t size() const { return size_; }
    size_t capacity() const { return buf_.size(); }
    uint64_t pushed() const { return pushed_counter_; }

    /** i-th retained sample, oldest first. */
    const Sample &
    at(size_t i) const
    {
        return buf_[(head_ + buf_.size() - size_ + i) % buf_.size()];
    }

    void
    notePushed()
    {
        ++pushed_counter_;
    }

  private:
    std::vector<Sample> buf_;
    size_t head_ = 0;
    size_t size_ = 0;
    uint64_t pushed_counter_ = 0;   ///< total pushes incl. overwritten
};

/** Accumulated eval time of one shard over the sampled cycles. */
struct ShardEvalStat
{
    uint64_t ticks = 0;     ///< total sampled eval ticks
    uint64_t maxTicks = 0;  ///< worst single sampled eval
    uint64_t samples = 0;
};

class SuperstepProfiler : public util::BspWaitObserver
{
  public:
    /** @p workers BSP workers (>= 1) and @p shards shards feed this
     *  profiler; sizing is fixed up front so recording never
     *  allocates. */
    SuperstepProfiler(uint32_t workers, size_t shards,
                      const ProfileOptions &opt = ProfileOptions{});

    SuperstepProfiler(const SuperstepProfiler &) = delete;
    SuperstepProfiler &operator=(const SuperstepProfiler &) = delete;

    const ProfileOptions &options() const { return opt_; }
    uint32_t workers() const { return static_cast<uint32_t>(
        rings_.size()); }
    size_t shards() const { return shardEval_.size(); }

    // -- Engine-facing hot path ------------------------------------------

    /** Start one simulated cycle; decides whether it is sampled. */
    void
    beginCycle()
    {
        cycles_.add(1);
        uint64_t n = cycleIndex_++;
        bool sample = opt_.sampleEvery <= 1 ||
            n % opt_.sampleEvery == 0;
        sampling_ = sample;
        if (sample) {
            sampled_.add(1);
            windowStart_.store(tick(), std::memory_order_relaxed);
            measuring_.store(true, std::memory_order_release);
        }
    }

    /** Finish the cycle started by beginCycle(). */
    void
    endCycle()
    {
        if (!sampling_)
            return;
        uint64_t t1 = tick();
        measuring_.store(false, std::memory_order_release);
        Sample s;
        s.t0 = windowStart_.load(std::memory_order_relaxed);
        s.t1 = t1;
        s.cycle = cycleIndex_ - 1;
        cycleRing_.push(s);
        cycleRing_.notePushed();
        sampling_ = false;
    }

    /** True between beginCycle and endCycle of a sampled cycle: the
     *  engine should take its timestamped paths. */
    bool sampling() const { return sampling_; }

    /** Record one superstep work interval for @p worker. Only valid
     *  while sampling(). */
    void
    record(uint32_t worker, Phase phase, uint64_t t0, uint64_t t1)
    {
        record(worker, phase, t0, t1, cycleIndex_ - 1);
    }

    /**
     * Explicit-cycle variant for batched dispatch: inside a k-cycle
     * batch, workers other than 0 must not read cycleInd_/sampling()
     * (worker 0 mutates them per inner cycle) — they compute the
     * sampled cycle number locally from the batch base and pass it
     * here. Safe from any worker at any time (the ring is still
     * per-worker private).
     */
    void
    record(uint32_t worker, Phase phase, uint64_t t0, uint64_t t1,
           uint64_t cycle)
    {
        Sample s;
        s.t0 = t0;
        s.t1 = t1;
        s.cycle = cycle;
        s.phase = phase;
        rings_[worker].push(s);
        rings_[worker].notePushed();
    }

    /** Batched-dispatch barrier accounting: attribute one in-dispatch
     *  barrier wait to @p worker at @p cycle (the per-epoch
     *  BspWaitObserver hooks cannot see the inner barrier). */
    void
    recordBarrierWait(uint32_t worker, uint64_t t0, uint64_t t1,
                      uint64_t cycle)
    {
        if (t1 <= t0)
            return;
        barrierWait_[worker].fetch_add(t1 - t0,
                                       std::memory_order_relaxed);
        record(worker, Phase::BarrierWait, t0, t1, cycle);
    }

    /** Accumulate one shard's eval duration (sampled cycles only). */
    void
    recordShardEval(size_t shard, uint64_t dticks)
    {
        ShardEvalStat &st = shardEval_[shard];
        st.ticks += dticks;
        if (dticks > st.maxTicks)
            st.maxTicks = dticks;
        ++st.samples;
    }

    // -- util::BspWaitObserver -------------------------------------------

    void epochWaitBegin(uint32_t worker) override;
    void epochWaitEnd(uint32_t worker) override;

    // -- Counters --------------------------------------------------------

    Counters &counters() { return counters_; }
    const Counters &counters() const { return counters_; }

    // -- Aggregation access (quiesced engine only) -----------------------

    uint64_t cyclesSeen() const { return cycleIndex_; }
    uint64_t cyclesSampled() const { return sampled_.value(); }
    const SampleRing &ring(uint32_t worker) const
    {
        return rings_[worker];
    }
    const SampleRing &cycleRing() const { return cycleRing_; }
    const std::vector<ShardEvalStat> &shardEval() const
    {
        return shardEval_;
    }
    /** Barrier-wait ticks accumulated per worker (sampled windows). */
    uint64_t
    barrierWaitTicks(uint32_t worker) const
    {
        return barrierWait_[worker].load(std::memory_order_relaxed);
    }
    /** Begin/End pairs seen per worker (every epoch, sampled or not —
     *  the wait-hook unit tests key off this). */
    uint64_t
    waitPairs(uint32_t worker) const
    {
        return waitEnds_[worker].load(std::memory_order_relaxed);
    }

  private:
    ProfileOptions opt_;
    Counters counters_;
    Counter &cycles_;
    Counter &sampled_;

    uint64_t cycleIndex_ = 0;
    bool sampling_ = false;

    // Wait-hook state: workers read these concurrently with worker 0
    // writing them in begin/endCycle, hence atomics; the values only
    // gate accounting, so relaxed races at window edges are benign
    // (intervals are clipped to the window).
    std::atomic<bool> measuring_{false};
    std::atomic<uint64_t> windowStart_{0};

    std::vector<SampleRing> rings_;     ///< one per worker
    SampleRing cycleRing_;              ///< sampled cycle spans
    std::vector<ShardEvalStat> shardEval_;

    // Indexed by worker; each slot written by its own worker.
    struct alignas(64) WaitSlot
    {
        uint64_t begin = 0;
    };
    std::vector<WaitSlot> waitBegin_;
    std::vector<std::atomic<uint64_t>> barrierWait_;
    std::vector<std::atomic<uint64_t>> waitEnds_;
};

} // namespace parendi::obs

#endif // PARENDI_OBS_PROFILER_HH
