#include "obs/costprofile.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace parendi::obs {

double
CostProfile::lookup(const std::string &key, double fallback) const
{
    auto it = cost.find(key);
    return it == cost.end() ? fallback : it->second;
}

double
CostProfile::total() const
{
    double sum = 0;
    for (const auto &[key, value] : cost)
        sum += value;
    return sum;
}

bool
CostProfile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        warn("cost profile: cannot read %s", path.c_str());
        return false;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::istringstream fields(line);
        std::string key;
        double value = 0;
        if (!(fields >> key >> value)) {
            warn("cost profile: %s:%zu: expected \"<key> <cost>\"",
                 path.c_str(), lineno);
            return false;
        }
        cost[key] = value;
    }
    return true;
}

bool
CostProfile::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cost profile: cannot write %s", path.c_str());
        return false;
    }
    out << "# parendi cost profile: <fiber key> <measured cost>\n";
    out.precision(17);
    for (const auto &[key, value] : cost)
        out << key << ' ' << value << '\n';
    out.flush();
    if (!out) {
        warn("cost profile: write to %s failed", path.c_str());
        return false;
    }
    return true;
}

} // namespace parendi::obs
