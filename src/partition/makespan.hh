/**
 * @file
 * Classical multiprocessor scheduling (makespan minimization) used as
 * the duplication-oblivious baseline (paper §4.3): LPT (longest
 * processing time first), a 4/3-approximation.
 */

#ifndef PARENDI_PARTITION_MAKESPAN_HH
#define PARENDI_PARTITION_MAKESPAN_HH

#include <cstdint>
#include <vector>

namespace parendi::partition {

/** Result of a makespan schedule. */
struct Schedule
{
    std::vector<uint32_t> binOf;        ///< item -> bin
    std::vector<uint64_t> binLoad;      ///< total cost per bin
    uint64_t makespan = 0;              ///< max bin load
};

/**
 * LPT schedule of @p costs onto @p bins machines.
 * Items with zero cost are still assigned (round robin over bins).
 */
Schedule lptSchedule(const std::vector<uint64_t> &costs, uint32_t bins);

/** Lower bounds: max(ceil(sum/bins), max_i cost_i). */
uint64_t makespanLowerBound(const std::vector<uint64_t> &costs,
                            uint32_t bins);

} // namespace parendi::partition

#endif // PARENDI_PARTITION_MAKESPAN_HH
