/**
 * @file
 * A BSP process: a set of fibers merged onto one tile (paper Fig. 3).
 * Cost, code and data accounting is duplication-aware: shared nodes are
 * counted once per process via the shared-universe bitset, exactly as
 * the submodular cost function τ(f_i ∪ f_j) = t_i + t_j − τ(f_i ∩ f_j)
 * requires (paper §4.3/§5.1).
 */

#ifndef PARENDI_PARTITION_PROCESS_HH
#define PARENDI_PARTITION_PROCESS_HH

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "fiber/fiber.hh"

namespace parendi::partition {

/** A merged set of fibers destined for a single tile. */
struct Process
{
    std::vector<uint32_t> fibers;           ///< fiber indices, sorted
    int chip = 0;                           ///< assigned IPU chip

    // Duplication-aware accumulators over exclusive nodes.
    uint64_t exclIpu = 0;
    uint64_t exclX86 = 0;
    uint64_t exclCode = 0;
    uint64_t exclData = 0;
    parendi::DenseBitset shared;            ///< union of member bitsets

    std::vector<rtl::RegId> regsRead;       ///< union, sorted unique
    std::vector<rtl::RegId> regsOwned;      ///< registers computed here
    std::vector<rtl::MemId> mems;           ///< arrays referenced

    // Cached totals (call recompute after direct field edits).
    uint64_t ipuCost = 0;                   ///< tile cycles per RTL cycle
    uint64_t x86Instrs = 0;
    uint64_t codeBytes = 0;
    uint64_t dataBytes = 0;                 ///< slot bytes (no arrays)

    /** Build a singleton process from one fiber. */
    static Process fromFiber(const fiber::FiberSet &fs, uint32_t fiber_idx);

    /** Materialize the merge of two processes. */
    static Process merged(const fiber::FiberSet &fs, const Process &a,
                          const Process &b);

    /** Recompute cached totals from the accumulators. */
    void recompute(const fiber::FiberSet &fs);

    /**
     * Total tile memory this process needs: code + slot data + one copy
     * of each referenced array + register exchange buffers.
     */
    uint64_t memBytes(const fiber::FiberSet &fs) const;
};

/**
 * τ(a ∪ b) in IPU cycles, without materializing the merge:
 * a.ipuCost + b.ipuCost − weight(a.shared ∩ b.shared).
 */
uint64_t mergedIpuCost(const fiber::FiberSet &fs, const Process &a,
                       const Process &b);

/** Merged memory bytes (code+data+arrays+buffers) without materializing. */
uint64_t mergedMemBytes(const fiber::FiberSet &fs, const Process &a,
                        const Process &b);

/** Bytes of register traffic flowing between two processes per cycle. */
uint64_t commBytesBetween(const fiber::FiberSet &fs, const Process &a,
                          const Process &b);

/** Sorted-vector set union helper shared by partitioners. */
template <typename T>
std::vector<T>
sortedUnion(const std::vector<T> &a, const std::vector<T> &b)
{
    std::vector<T> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

/** A complete partitioning of a design into processes. */
struct Partitioning
{
    std::vector<Process> processes;

    /** max_p ipuCost — the BSP compute-phase bound t_comp. */
    uint64_t makespanIpu() const;

    /** Sum over processes (total duplicated work). */
    uint64_t totalIpu() const;

    /** Duplication factor vs. executing every shared node once. */
    double duplicationRatio(const fiber::FiberSet &fs) const;

    /** Verify every fiber is assigned to exactly one process. */
    void checkComplete(const fiber::FiberSet &fs) const;
};

} // namespace parendi::partition

#endif // PARENDI_PARTITION_PROCESS_HH
