#include "partition/makespan.hh"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/logging.hh"

namespace parendi::partition {

Schedule
lptSchedule(const std::vector<uint64_t> &costs, uint32_t bins)
{
    if (bins == 0)
        fatal("lptSchedule: zero bins");
    Schedule s;
    s.binOf.assign(costs.size(), 0);
    s.binLoad.assign(bins, 0);

    std::vector<uint32_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return costs[a] > costs[b];
                     });

    // Min-heap of (load, bin).
    using Entry = std::pair<uint64_t, uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (uint32_t b = 0; b < bins; ++b)
        heap.push({0, b});

    for (uint32_t item : order) {
        auto [load, bin] = heap.top();
        heap.pop();
        s.binOf[item] = bin;
        load += costs[item];
        s.binLoad[bin] = load;
        heap.push({load, bin});
    }
    s.makespan = *std::max_element(s.binLoad.begin(), s.binLoad.end());
    return s;
}

uint64_t
makespanLowerBound(const std::vector<uint64_t> &costs, uint32_t bins)
{
    if (bins == 0)
        fatal("makespanLowerBound: zero bins");
    uint64_t sum = 0, biggest = 0;
    for (uint64_t c : costs) {
        sum += c;
        biggest = std::max(biggest, c);
    }
    return std::max((sum + bins - 1) / bins, biggest);
}

} // namespace parendi::partition
