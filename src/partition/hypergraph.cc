#include "partition/hypergraph.hh"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "partition/makespan.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace parendi::partition {

uint32_t
Hypergraph::addNode(uint64_t weight)
{
    nodeWeight.push_back(weight);
    return static_cast<uint32_t>(nodeWeight.size() - 1);
}

bool
Hypergraph::addEdge(uint64_t weight, std::vector<uint32_t> edge_pins)
{
    std::sort(edge_pins.begin(), edge_pins.end());
    edge_pins.erase(std::unique(edge_pins.begin(), edge_pins.end()),
                    edge_pins.end());
    if (edge_pins.size() < 2)
        return false;
    edgeWeight.push_back(weight);
    pins.push_back(std::move(edge_pins));
    return true;
}

void
Hypergraph::buildIncidence()
{
    incident.assign(numNodes(), {});
    for (uint32_t e = 0; e < numEdges(); ++e)
        for (uint32_t v : pins[e])
            incident[v].push_back(e);
}

uint64_t
Hypergraph::totalNodeWeight() const
{
    return std::accumulate(nodeWeight.begin(), nodeWeight.end(),
                           uint64_t{0});
}

uint64_t
connectivityCost(const Hypergraph &hg, const std::vector<uint32_t> &part,
                 uint32_t k)
{
    (void)k;
    uint64_t cost = 0;
    std::vector<uint32_t> seen;
    for (uint32_t e = 0; e < hg.numEdges(); ++e) {
        seen.clear();
        for (uint32_t v : hg.pins[e])
            seen.push_back(part[v]);
        std::sort(seen.begin(), seen.end());
        seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
        cost += hg.edgeWeight[e] * (seen.size() - 1);
    }
    return cost;
}

uint64_t
cutCost(const Hypergraph &hg, const std::vector<uint32_t> &part)
{
    uint64_t cost = 0;
    for (uint32_t e = 0; e < hg.numEdges(); ++e) {
        uint32_t first = part[hg.pins[e][0]];
        for (uint32_t v : hg.pins[e]) {
            if (part[v] != first) {
                cost += hg.edgeWeight[e];
                break;
            }
        }
    }
    return cost;
}

namespace {

/** Per-edge pin counts per part, kept as small sorted vectors since
 *  most edges touch only a handful of parts even for large k. */
struct EdgeParts
{
    std::vector<std::pair<uint32_t, uint32_t>> counts; // (part, pins)

    uint32_t
    lambda() const
    {
        return static_cast<uint32_t>(counts.size());
    }

    uint32_t
    countOf(uint32_t part) const
    {
        for (const auto &[p, c] : counts)
            if (p == part)
                return c;
        return 0;
    }

    void
    add(uint32_t part)
    {
        for (auto &[p, c] : counts) {
            if (p == part) {
                ++c;
                return;
            }
        }
        counts.emplace_back(part, 1);
    }

    void
    remove(uint32_t part)
    {
        for (size_t i = 0; i < counts.size(); ++i) {
            if (counts[i].first == part) {
                if (--counts[i].second == 0) {
                    counts[i] = counts.back();
                    counts.pop_back();
                }
                return;
            }
        }
        panic("EdgeParts::remove: part %u not present", part);
    }
};

/**
 * One greedy FM-style refinement pass: visit nodes in random order and
 * apply the best positive-gain (connectivity-1) move that keeps
 * balance. Returns number of moves applied.
 */
size_t
refinePass(const Hypergraph &hg, std::vector<uint32_t> &part,
           std::vector<EdgeParts> &edge_parts,
           std::vector<uint64_t> &part_weight, uint64_t max_part_weight,
           Rng &rng)
{
    size_t moves = 0;
    std::vector<uint32_t> order(hg.numNodes());
    std::iota(order.begin(), order.end(), 0);
    for (size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    for (uint32_t v : order) {
        uint32_t from = part[v];
        // Candidate target parts: parts present on incident edges.
        std::vector<uint32_t> cands;
        for (uint32_t e : hg.incident[v])
            for (const auto &[p, c] : edge_parts[e].counts)
                if (p != from)
                    cands.push_back(p);
        std::sort(cands.begin(), cands.end());
        cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
        if (cands.empty())
            continue;

        int64_t best_gain = 0;
        uint32_t best_to = from;
        for (uint32_t to : cands) {
            if (part_weight[to] + hg.nodeWeight[v] > max_part_weight)
                continue;
            int64_t gain = 0;
            for (uint32_t e : hg.incident[v]) {
                const EdgeParts &ep = edge_parts[e];
                int64_t w = static_cast<int64_t>(hg.edgeWeight[e]);
                // Moving v: if v is the last pin of `from` on e,
                // lambda drops by 1 unless `to` is new on e.
                bool leaves_from = ep.countOf(from) == 1;
                bool enters_to = ep.countOf(to) == 0;
                if (leaves_from && !enters_to)
                    gain += w;
                if (!leaves_from && enters_to)
                    gain -= w;
            }
            if (gain > best_gain ||
                (gain == best_gain && best_to != from &&
                 part_weight[to] < part_weight[best_to])) {
                best_gain = gain;
                best_to = to;
            }
        }
        if (best_to == from || best_gain <= 0)
            continue;
        // Apply the move.
        for (uint32_t e : hg.incident[v]) {
            edge_parts[e].remove(from);
            edge_parts[e].add(best_to);
        }
        part_weight[from] -= hg.nodeWeight[v];
        part_weight[best_to] += hg.nodeWeight[v];
        part[v] = best_to;
        ++moves;
    }
    return moves;
}

void
refine(const Hypergraph &hg, std::vector<uint32_t> &part,
       const HgOptions &opt, uint64_t max_part_weight, Rng &rng)
{
    std::vector<EdgeParts> edge_parts(hg.numEdges());
    for (uint32_t e = 0; e < hg.numEdges(); ++e)
        for (uint32_t v : hg.pins[e])
            edge_parts[e].add(part[v]);
    std::vector<uint64_t> part_weight(opt.k, 0);
    for (uint32_t v = 0; v < hg.numNodes(); ++v)
        part_weight[part[v]] += hg.nodeWeight[v];

    for (int pass = 0; pass < opt.refinePasses; ++pass) {
        size_t moves = refinePass(hg, part, edge_parts, part_weight,
                                  max_part_weight, rng);
        if (moves == 0)
            break;
    }
}

/** Heavy-edge matching contraction. Returns fine->coarse mapping and
 *  the coarse hypergraph; nullopt-style empty mapping if no progress. */
struct CoarseLevel
{
    Hypergraph hg;
    std::vector<uint32_t> fineToCoarse;
};

bool
coarsen(const Hypergraph &fine, uint64_t max_cluster_weight, Rng &rng,
        CoarseLevel &out)
{
    size_t n = fine.numNodes();
    std::vector<uint32_t> match(n, UINT32_MAX);
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (size_t i = n; i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    size_t matched = 0;
    std::unordered_map<uint32_t, double> rating;
    for (uint32_t u : order) {
        if (match[u] != UINT32_MAX)
            continue;
        rating.clear();
        for (uint32_t e : fine.incident[u]) {
            if (fine.pins[e].size() > 64)
                continue; // skip huge edges: poor signal, costly
            double r = static_cast<double>(fine.edgeWeight[e]) /
                (static_cast<double>(fine.pins[e].size()) - 1.0);
            for (uint32_t v : fine.pins[e])
                if (v != u && match[v] == UINT32_MAX)
                    rating[v] += r;
        }
        uint32_t best = UINT32_MAX;
        double best_r = 0.0;
        for (const auto &[v, r] : rating) {
            if (fine.nodeWeight[u] + fine.nodeWeight[v] >
                max_cluster_weight)
                continue;
            if (r > best_r || (r == best_r && v < best)) {
                best_r = r;
                best = v;
            }
        }
        if (best != UINT32_MAX) {
            match[u] = best;
            match[best] = u;
            matched += 2;
        }
    }
    if (matched < n / 20)
        return false; // negligible progress

    // Assign coarse ids.
    out.fineToCoarse.assign(n, UINT32_MAX);
    uint32_t next_id = 0;
    for (uint32_t u = 0; u < n; ++u) {
        if (out.fineToCoarse[u] != UINT32_MAX)
            continue;
        out.fineToCoarse[u] = next_id;
        if (match[u] != UINT32_MAX)
            out.fineToCoarse[match[u]] = next_id;
        ++next_id;
    }
    out.hg = Hypergraph{};
    out.hg.nodeWeight.assign(next_id, 0);
    for (uint32_t u = 0; u < n; ++u)
        out.hg.nodeWeight[out.fineToCoarse[u]] += fine.nodeWeight[u];
    for (uint32_t e = 0; e < fine.numEdges(); ++e) {
        std::vector<uint32_t> cpins;
        cpins.reserve(fine.pins[e].size());
        for (uint32_t v : fine.pins[e])
            cpins.push_back(out.fineToCoarse[v]);
        out.hg.addEdge(fine.edgeWeight[e], std::move(cpins));
    }
    out.hg.buildIncidence();
    return true;
}

/** Balanced greedy initial partition: LPT on node weights. */
std::vector<uint32_t>
initialPartition(const Hypergraph &hg, const HgOptions &opt)
{
    Schedule s = lptSchedule(hg.nodeWeight, opt.k);
    return s.binOf;
}

} // namespace

std::vector<uint32_t>
partitionHypergraph(const Hypergraph &hg_in, const HgOptions &opt)
{
    if (opt.k == 0)
        fatal("partitionHypergraph: k must be positive");
    if (hg_in.numNodes() == 0)
        return {};
    if (opt.k == 1)
        return std::vector<uint32_t>(hg_in.numNodes(), 0);

    Rng rng(opt.seed);
    uint64_t total = hg_in.totalNodeWeight();
    uint64_t max_part_weight = static_cast<uint64_t>(
        static_cast<double>(total) / opt.k * (1.0 + opt.epsilon)) + 1;
    // Never let a single cluster exceed the part budget during
    // coarsening, or balance becomes unachievable.
    uint64_t max_cluster_weight = std::max<uint64_t>(
        max_part_weight / 4, 1);

    size_t target = opt.coarsenTarget
        ? opt.coarsenTarget
        : std::max<size_t>(static_cast<size_t>(opt.k) * 16, 64);

    // Build the V-cycle.
    std::vector<CoarseLevel> levels;
    const Hypergraph *cur = &hg_in;
    Hypergraph first = hg_in;
    if (first.incident.empty() ||
        first.incident.size() != first.numNodes())
        first.buildIncidence();
    cur = &first;
    while (cur->numNodes() > target) {
        CoarseLevel lvl;
        if (!coarsen(*cur, max_cluster_weight, rng, lvl))
            break;
        levels.push_back(std::move(lvl));
        cur = &levels.back().hg;
    }

    std::vector<uint32_t> part = initialPartition(*cur, opt);
    refine(*cur, part, opt, max_part_weight, rng);

    // Uncoarsen with refinement at each level.
    for (size_t li = levels.size(); li-- > 0;) {
        const Hypergraph &fine =
            li == 0 ? first : levels[li - 1].hg;
        std::vector<uint32_t> fine_part(fine.numNodes());
        for (uint32_t v = 0; v < fine.numNodes(); ++v)
            fine_part[v] = part[levels[li].fineToCoarse[v]];
        part = std::move(fine_part);
        refine(fine, part, opt, max_part_weight, rng);
    }
    return part;
}

} // namespace parendi::partition
