#include "partition/merge.hh"

#include <algorithm>
#include <numeric>
#include <queue>
#include <tuple>

#include "partition/hypergraph.hh"
#include "util/logging.hh"

namespace parendi::partition {

using fiber::FiberSet;

namespace {

/** Union-find for stage 1. */
struct UnionFind
{
    std::vector<uint32_t> parent;

    explicit UnionFind(size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    uint32_t
    find(uint32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void
    unite(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[b] = a;
    }
};

} // namespace

std::vector<Process>
initialProcesses(const FiberSet &fs, const MergeOptions &opt)
{
    const rtl::Netlist &nl = fs.netlist();
    UnionFind uf(fs.size());

    // Stage 1: fibers referencing the same large array must share a
    // tile, so only one copy of the array exists.
    std::vector<uint32_t> array_rep(nl.numMemories(), UINT32_MAX);
    for (uint32_t fi = 0; fi < fs.size(); ++fi) {
        for (rtl::MemId m : fs[fi].memsUsed) {
            if (nl.mem(m).sizeBytes() < opt.largeArrayBytes)
                continue;
            if (array_rep[m] == UINT32_MAX)
                array_rep[m] = fi;
            else
                uf.unite(array_rep[m], fi);
        }
    }

    // Group fibers by root.
    std::vector<std::vector<uint32_t>> groups(fs.size());
    for (uint32_t fi = 0; fi < fs.size(); ++fi)
        groups[uf.find(fi)].push_back(fi);

    std::vector<Process> procs;
    for (auto &g : groups) {
        if (g.empty())
            continue;
        Process p = Process::fromFiber(fs, g[0]);
        for (size_t i = 1; i < g.size(); ++i)
            p = Process::merged(fs, p, Process::fromFiber(fs, g[i]));
        procs.push_back(std::move(p));
    }
    return procs;
}

uint64_t
assignChips(const FiberSet &fs, std::vector<Process> &procs,
            uint32_t chips, const MergeOptions &opt)
{
    if (chips <= 1) {
        for (Process &p : procs)
            p.chip = 0;
        return 0;
    }

    // Hypergraph: nodes = processes (weight = compute cost), one
    // hyperedge per register connecting its writer and readers
    // (weight = register words, paper §5.1 stage 2).
    const rtl::Netlist &nl = fs.netlist();
    Hypergraph hg;
    for (const Process &p : procs)
        hg.addNode(std::max<uint64_t>(p.ipuCost, 1));

    std::vector<std::vector<uint32_t>> touching(nl.numRegisters());
    for (uint32_t pi = 0; pi < procs.size(); ++pi) {
        for (rtl::RegId r : procs[pi].regsRead)
            touching[r].push_back(pi);
        for (rtl::RegId r : procs[pi].regsOwned)
            touching[r].push_back(pi);
    }
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
        hg.addEdge((nl.reg(r).width + 31) / 32, touching[r]);
    hg.buildIncidence();

    HgOptions hopt;
    hopt.k = chips;
    hopt.seed = opt.seed;
    std::vector<uint32_t> part = partitionHypergraph(hg, hopt);
    for (uint32_t pi = 0; pi < procs.size(); ++pi)
        procs[pi].chip = static_cast<int>(part[pi]);

    // Off-chip cut: register bytes whose writer and a reader differ
    // in chip (counted once per (reg, remote chip) pair).
    uint64_t cut = 0;
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        int writer_chip = -1;
        for (uint32_t pi : touching[r])
            if (std::binary_search(procs[pi].regsOwned.begin(),
                                   procs[pi].regsOwned.end(), r))
                writer_chip = procs[pi].chip;
        if (writer_chip < 0)
            continue;
        std::vector<int> remote;
        for (uint32_t pi : touching[r])
            if (procs[pi].chip != writer_chip &&
                std::binary_search(procs[pi].regsRead.begin(),
                                   procs[pi].regsRead.end(), r))
                remote.push_back(procs[pi].chip);
        std::sort(remote.begin(), remote.end());
        remote.erase(std::unique(remote.begin(), remote.end()),
                     remote.end());
        cut += remote.size() * fs.regBytes(r);
    }
    return cut;
}

namespace {

/**
 * Worklist driver for stages 3 and 4. `relaxed` = stage 4 (allow
 * makespan growth). Mutates procs in place (dead entries flagged).
 */
struct Merger
{
    const FiberSet &fs;
    const MergeOptions &opt;
    std::vector<Process> &procs;
    std::vector<bool> live;
    std::vector<bool> skipped;
    std::vector<uint32_t> version;
    size_t liveCount;
    uint64_t straggler;

    // reg -> owning process; reg -> (possibly stale) reader list.
    std::vector<uint32_t> regOwner;
    std::vector<std::vector<uint32_t>> regReaders;

    using HeapEntry = std::tuple<uint64_t, uint32_t, uint32_t>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> heap;

    Merger(const FiberSet &fs_, const MergeOptions &opt_,
           std::vector<Process> &procs_)
        : fs(fs_), opt(opt_), procs(procs_)
    {
        live.assign(procs.size(), true);
        skipped.assign(procs.size(), false);
        version.assign(procs.size(), 0);
        liveCount = procs.size();
        straggler = 0;
        regOwner.assign(fs.netlist().numRegisters(), UINT32_MAX);
        regReaders.assign(fs.netlist().numRegisters(), {});
        for (uint32_t pi = 0; pi < procs.size(); ++pi) {
            straggler = std::max(straggler, procs[pi].ipuCost);
            for (rtl::RegId r : procs[pi].regsOwned)
                regOwner[r] = pi;
            for (rtl::RegId r : procs[pi].regsRead)
                regReaders[r].push_back(pi);
            heap.push({procs[pi].ipuCost, version[pi], pi});
        }
    }

    /** Neighbors of pi: processes it exchanges registers with. */
    std::vector<uint32_t>
    neighbors(uint32_t pi)
    {
        std::vector<uint32_t> out;
        const Process &p = procs[pi];
        for (rtl::RegId r : p.regsRead) {
            uint32_t o = regOwner[r];
            if (o != UINT32_MAX && o != pi && live[o])
                out.push_back(o);
        }
        for (rtl::RegId r : p.regsOwned) {
            for (uint32_t q : regReaders[r]) {
                if (q != pi && q < procs.size() && live[q] &&
                    std::binary_search(procs[q].regsRead.begin(),
                                       procs[q].regsRead.end(), r))
                    out.push_back(q);
            }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    }

    /** Merge b into a; a keeps its index. */
    void
    applyMerge(uint32_t a, uint32_t b)
    {
        Process merged = Process::merged(fs, procs[a], procs[b]);
        procs[a] = std::move(merged);
        live[b] = false;
        --liveCount;
        ++version[a];
        ++version[b];
        skipped[a] = false;
        for (rtl::RegId r : procs[a].regsOwned)
            regOwner[r] = a;
        for (rtl::RegId r : procs[a].regsRead)
            regReaders[r].push_back(a);
        straggler = std::max(straggler, procs[a].ipuCost);
        heap.push({procs[a].ipuCost, version[a], a});
    }

    /** Next unprocessed live process by ascending cost, or UINT32_MAX. */
    uint32_t
    popSmallest()
    {
        while (!heap.empty()) {
            auto [cost, ver, pi] = heap.top();
            heap.pop();
            if (!live[pi] || version[pi] != ver || skipped[pi])
                continue;
            return pi;
        }
        return UINT32_MAX;
    }

    /** The two cheapest live processes (for the fallback merge). */
    std::pair<uint32_t, uint32_t>
    twoSmallest() const
    {
        uint32_t s1 = UINT32_MAX, s2 = UINT32_MAX;
        for (uint32_t pi = 0; pi < procs.size(); ++pi) {
            if (!live[pi])
                continue;
            if (s1 == UINT32_MAX || procs[pi].ipuCost < procs[s1].ipuCost) {
                s2 = s1;
                s1 = pi;
            } else if (s2 == UINT32_MAX ||
                       procs[pi].ipuCost < procs[s2].ipuCost) {
                s2 = pi;
            }
        }
        return {s1, s2};
    }

    bool
    fits(uint32_t a, uint32_t b, bool relaxed) const
    {
        if (mergedMemBytes(fs, procs[a], procs[b]) > opt.tileMemoryBytes)
            return false;
        if (!relaxed &&
            mergedIpuCost(fs, procs[a], procs[b]) > straggler)
            return false;
        return true;
    }

    /** One sweep of the stage-3/4 policy. Returns true if the target
     *  was reached. */
    bool
    run(uint32_t target, bool relaxed)
    {
        // Reset skip marks for a fresh sweep; refill the heap.
        heap = {};
        for (uint32_t pi = 0; pi < procs.size(); ++pi) {
            if (!live[pi])
                continue;
            skipped[pi] = false;
            heap.push({procs[pi].ipuCost, version[pi], pi});
        }
        while (liveCount > target) {
            uint32_t pi = popSmallest();
            if (pi == UINT32_MAX)
                return liveCount <= target;
            // Best communicating partner.
            uint32_t best = UINT32_MAX;
            int64_t best_score = -1;
            uint64_t best_cost = UINT64_MAX;
            for (uint32_t q : neighbors(pi)) {
                if (!fits(pi, q, relaxed))
                    continue;
                uint64_t mc = mergedIpuCost(fs, procs[pi], procs[q]);
                int64_t saving =
                    static_cast<int64_t>(procs[pi].ipuCost +
                                         procs[q].ipuCost - mc) +
                    static_cast<int64_t>(
                        commBytesBetween(fs, procs[pi], procs[q]));
                bool better = relaxed
                    ? (mc < best_cost)
                    : (saving > best_score ||
                       (saving == best_score && mc < best_cost));
                if (better) {
                    best = q;
                    best_score = saving;
                    best_cost = mc;
                }
            }
            if (best != UINT32_MAX) {
                applyMerge(pi, best);
                continue;
            }
            // Fallback: the two smallest processes.
            auto [s1, s2] = twoSmallest();
            if (s2 != UINT32_MAX && fits(s1, s2, relaxed)) {
                applyMerge(s1, s2);
                continue;
            }
            skipped[pi] = true;
        }
        return true;
    }
};

} // namespace

std::vector<Process>
mergeToTiles(const FiberSet &fs, std::vector<Process> procs,
             uint32_t target, const MergeOptions &opt)
{
    if (target == 0)
        fatal("mergeToTiles: zero tiles");
    if (procs.size() <= target)
        return procs;

    Merger merger(fs, opt, procs);
    // Stage 3: conservative (straggler-bounded) merging.
    merger.run(target, false);
    // Stage 4: relax the straggler bound if needed; sweep until the
    // target is reached or no sweep makes progress.
    while (merger.liveCount > target) {
        size_t before = merger.liveCount;
        merger.run(target, true);
        if (merger.liveCount == before)
            fatal("design does not fit: %zu processes remain for %u "
                  "tiles (tile memory limit %llu bytes)",
                  merger.liveCount, target,
                  static_cast<unsigned long long>(opt.tileMemoryBytes));
    }

    std::vector<Process> out;
    out.reserve(merger.liveCount);
    for (uint32_t pi = 0; pi < procs.size(); ++pi)
        if (merger.live[pi])
            out.push_back(std::move(procs[pi]));
    return out;
}

Partitioning
bottomUpPartition(const FiberSet &fs, uint32_t chips,
                  uint32_t tiles_per_chip, const MergeOptions &opt,
                  MergeStats *stats)
{
    MergeStats local;
    local.fibers = fs.size();
    local.stragglerIpu = fs.maxFiberIpu();

    std::vector<Process> procs = initialProcesses(fs, opt);
    local.afterStage1 = procs.size();

    local.offChipCutBytes = assignChips(fs, procs, chips, opt);

    Partitioning result;
    for (uint32_t chip = 0; chip < std::max(chips, 1u); ++chip) {
        std::vector<Process> chip_procs;
        for (Process &p : procs)
            if (p.chip == static_cast<int>(chip))
                chip_procs.push_back(std::move(p));
        if (chip_procs.empty())
            continue;
        std::vector<Process> merged =
            mergeToTiles(fs, std::move(chip_procs), tiles_per_chip, opt);
        for (Process &p : merged) {
            p.chip = static_cast<int>(chip);
            result.processes.push_back(std::move(p));
        }
    }
    local.afterStage4 = result.processes.size();
    local.finalMakespanIpu = result.makespanIpu();
    result.checkComplete(fs);
    if (stats)
        *stats = local;
    return result;
}

} // namespace parendi::partition
