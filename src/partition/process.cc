#include "partition/process.hh"

#include <algorithm>

#include "util/logging.hh"

namespace parendi::partition {

using fiber::FiberSet;
using fiber::Fiber;
using fiber::SinkKind;

Process
Process::fromFiber(const FiberSet &fs, uint32_t fiber_idx)
{
    const Fiber &f = fs[fiber_idx];
    Process p;
    p.fibers = {fiber_idx};
    p.exclIpu = f.exclIpu;
    p.exclX86 = f.exclX86;
    p.exclCode = f.exclCode;
    p.exclData = f.exclData;
    p.shared = f.shared;
    p.regsRead = f.regsRead;
    p.mems = f.memsUsed;
    if (f.kind == SinkKind::Register)
        p.regsOwned = {f.target};
    p.recompute(fs);
    return p;
}

Process
Process::merged(const FiberSet &fs, const Process &a, const Process &b)
{
    Process p;
    p.fibers = sortedUnion(a.fibers, b.fibers);
    p.chip = a.chip;
    p.exclIpu = a.exclIpu + b.exclIpu;
    p.exclX86 = a.exclX86 + b.exclX86;
    p.exclCode = a.exclCode + b.exclCode;
    p.exclData = a.exclData + b.exclData;
    p.shared = a.shared;
    p.shared |= b.shared;
    p.regsRead = sortedUnion(a.regsRead, b.regsRead);
    p.regsOwned = sortedUnion(a.regsOwned, b.regsOwned);
    p.mems = sortedUnion(a.mems, b.mems);
    p.recompute(fs);
    return p;
}

void
Process::recompute(const FiberSet &fs)
{
    ipuCost = exclIpu + shared.totalWeight(fs.sharedIpu());
    x86Instrs = exclX86 + shared.totalWeight(fs.sharedX86());
    codeBytes = exclCode + shared.totalWeight(fs.sharedCode());
    dataBytes = exclData + shared.totalWeight(fs.sharedData());
}

uint64_t
Process::memBytes(const FiberSet &fs) const
{
    uint64_t bytes = codeBytes + dataBytes;
    const rtl::Netlist &nl = fs.netlist();
    for (rtl::MemId m : mems)
        bytes += nl.mem(m).sizeBytes();
    // Double-buffered exchange landing area for registers read plus the
    // outgoing staging of owned registers.
    for (rtl::RegId r : regsRead)
        bytes += 2 * fs.regBytes(r);
    for (rtl::RegId r : regsOwned)
        bytes += fs.regBytes(r);
    return bytes;
}

uint64_t
mergedIpuCost(const FiberSet &fs, const Process &a, const Process &b)
{
    uint64_t overlap = a.shared.intersectWeight(b.shared, fs.sharedIpu());
    return a.ipuCost + b.ipuCost - overlap;
}

uint64_t
mergedMemBytes(const FiberSet &fs, const Process &a, const Process &b)
{
    const rtl::Netlist &nl = fs.netlist();
    uint64_t code = a.codeBytes + b.codeBytes -
        a.shared.intersectWeight(b.shared, fs.sharedCode());
    uint64_t data = a.dataBytes + b.dataBytes -
        a.shared.intersectWeight(b.shared, fs.sharedData());
    uint64_t bytes = code + data;
    // Arrays: count the union once.
    size_t ia = 0, ib = 0;
    while (ia < a.mems.size() || ib < b.mems.size()) {
        rtl::MemId m;
        if (ib == b.mems.size() ||
            (ia < a.mems.size() && a.mems[ia] <= b.mems[ib])) {
            m = a.mems[ia];
            if (ib < b.mems.size() && b.mems[ib] == m)
                ++ib;
            ++ia;
        } else {
            m = b.mems[ib];
            ++ib;
        }
        bytes += nl.mem(m).sizeBytes();
    }
    // Register buffers over the unions.
    size_t ra = 0, rb = 0;
    auto add_regs = [&](const std::vector<rtl::RegId> &va,
                        const std::vector<rtl::RegId> &vb,
                        uint64_t per_reg_factor) {
        size_t i = 0, j = 0;
        while (i < va.size() || j < vb.size()) {
            rtl::RegId r;
            if (j == vb.size() || (i < va.size() && va[i] <= vb[j])) {
                r = va[i];
                if (j < vb.size() && vb[j] == r)
                    ++j;
                ++i;
            } else {
                r = vb[j];
                ++j;
            }
            bytes += per_reg_factor * fs.regBytes(r);
        }
    };
    (void)ra;
    (void)rb;
    add_regs(a.regsRead, b.regsRead, 2);
    add_regs(a.regsOwned, b.regsOwned, 1);
    return bytes;
}

uint64_t
commBytesBetween(const FiberSet &fs, const Process &a, const Process &b)
{
    // Registers owned by one side and read by the other.
    uint64_t bytes = 0;
    auto accumulate = [&](const std::vector<rtl::RegId> &owned,
                          const std::vector<rtl::RegId> &read) {
        size_t i = 0, j = 0;
        while (i < owned.size() && j < read.size()) {
            if (owned[i] < read[j]) {
                ++i;
            } else if (owned[i] > read[j]) {
                ++j;
            } else {
                bytes += fs.regBytes(owned[i]);
                ++i;
                ++j;
            }
        }
    };
    accumulate(a.regsOwned, b.regsRead);
    accumulate(b.regsOwned, a.regsRead);
    return bytes;
}

uint64_t
Partitioning::makespanIpu() const
{
    uint64_t best = 0;
    for (const Process &p : processes)
        best = std::max(best, p.ipuCost);
    return best;
}

uint64_t
Partitioning::totalIpu() const
{
    uint64_t total = 0;
    for (const Process &p : processes)
        total += p.ipuCost;
    return total;
}

double
Partitioning::duplicationRatio(const FiberSet &fs) const
{
    // Ideal: every shared node executed once, plus all exclusive work.
    uint64_t ideal = 0;
    for (size_t i = 0; i < fs.size(); ++i)
        ideal += fs[i].exclIpu;
    for (uint64_t w : fs.sharedIpu())
        ideal += w;
    uint64_t actual = totalIpu();
    return ideal ? static_cast<double>(actual) / ideal : 1.0;
}

void
Partitioning::checkComplete(const FiberSet &fs) const
{
    std::vector<uint8_t> seen(fs.size(), 0);
    for (const Process &p : processes) {
        for (uint32_t f : p.fibers) {
            if (f >= fs.size())
                panic("partitioning references fiber %u out of range", f);
            if (seen[f]++)
                panic("fiber %u assigned to two processes", f);
        }
    }
    for (size_t i = 0; i < fs.size(); ++i)
        if (!seen[i])
            panic("fiber %zu not assigned to any process", i);
}

} // namespace parendi::partition
