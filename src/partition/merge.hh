/**
 * @file
 * Parendi's bottom-up partitioning algorithm (paper §5.1), four stages:
 *
 *  1. Reduce data memory footprint: merge fibers referencing the same
 *     *very large* RTL array (>= largeArrayBytes, tunable).
 *  2. Minimize off-chip communication: k-way hypergraph partition of
 *     fibers across IPU chips (hypernodes = fibers, hyperedges =
 *     registers, edge weight = register words).
 *  3. Within each chip, conservatively merge the smallest processes
 *     with communicating partners so long as the merged time does not
 *     exceed the current straggler and tile memory is not overflowed.
 *  4. If stage 3 did not reach the tile budget, keep merging while
 *     allowing the worst-case execution time to grow (memory limits
 *     still enforced). Compilation fails if the design cannot fit.
 */

#ifndef PARENDI_PARTITION_MERGE_HH
#define PARENDI_PARTITION_MERGE_HH

#include <cstdint>
#include <vector>

#include "partition/process.hh"

namespace parendi::partition {

struct MergeOptions
{
    /** Per-tile memory budget (624 KiB tile minus runtime reserve). */
    uint64_t tileMemoryBytes = 560 * 1024;
    /** Stage-1 threshold: arrays at least this big force fiber merges. */
    uint64_t largeArrayBytes = 128 * 1024;
    /** Random seed for the hypergraph stage. */
    uint64_t seed = 1;
};

/** Per-stage observability for tests and the compile report. */
struct MergeStats
{
    size_t fibers = 0;
    size_t afterStage1 = 0;
    size_t afterStage3 = 0;
    size_t afterStage4 = 0;
    uint64_t stragglerIpu = 0;      ///< max fiber cost (lower bound)
    uint64_t finalMakespanIpu = 0;
    uint64_t offChipCutBytes = 0;   ///< stage-2 cut (0 if one chip)
};

/**
 * Stage 1: build singleton processes and merge fibers sharing large
 * arrays (union-find over array references).
 */
std::vector<Process> initialProcesses(const fiber::FiberSet &fs,
                                      const MergeOptions &opt);

/**
 * Stage 2: assign processes to @p chips chips by partitioning the
 * fiber/register hypergraph; sets Process::chip. Returns the off-chip
 * cut in bytes (sum of register bytes crossing chips).
 */
uint64_t assignChips(const fiber::FiberSet &fs,
                     std::vector<Process> &procs, uint32_t chips,
                     const MergeOptions &opt);

/**
 * Stages 3 and 4 within one chip: merge @p procs (all on one chip)
 * down to at most @p target processes. Calls fatal() if the design
 * cannot fit the tile count/memory.
 */
std::vector<Process> mergeToTiles(const fiber::FiberSet &fs,
                                  std::vector<Process> procs,
                                  uint32_t target,
                                  const MergeOptions &opt);

/**
 * The full §5.1 pipeline: stages 1-4 for @p chips chips with
 * @p tilesPerChip tiles each. Returns the final partitioning with
 * Process::chip assigned.
 */
Partitioning bottomUpPartition(const fiber::FiberSet &fs, uint32_t chips,
                               uint32_t tiles_per_chip,
                               const MergeOptions &opt = MergeOptions{},
                               MergeStats *stats = nullptr);

} // namespace parendi::partition

#endif // PARENDI_PARTITION_MERGE_HH
