/**
 * @file
 * A weighted hypergraph and a multilevel k-way partitioner (heavy-edge
 * coarsening, greedy initial partition, FM-style refinement). This is
 * the stand-in for the KaHyPar library used by paper §5.1 stage 2 (and
 * for the RepCut-style "H" strategy of §6.4.1).
 */

#ifndef PARENDI_PARTITION_HYPERGRAPH_HH
#define PARENDI_PARTITION_HYPERGRAPH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parendi::partition {

/** Pin-list hypergraph with integer node and edge weights. */
struct Hypergraph
{
    std::vector<uint64_t> nodeWeight;
    std::vector<uint64_t> edgeWeight;
    std::vector<std::vector<uint32_t>> pins;      ///< edge -> nodes
    std::vector<std::vector<uint32_t>> incident;  ///< node -> edges

    size_t numNodes() const { return nodeWeight.size(); }
    size_t numEdges() const { return edgeWeight.size(); }

    uint32_t addNode(uint64_t weight);
    /** Add a hyperedge; duplicate pins are removed; edges with fewer
     *  than two distinct pins are dropped (returns false). */
    bool addEdge(uint64_t weight, std::vector<uint32_t> edge_pins);

    /** (Re)build the node->edges incidence lists. */
    void buildIncidence();

    uint64_t totalNodeWeight() const;
};

struct HgOptions
{
    uint32_t k = 2;             ///< number of parts
    double epsilon = 0.05;      ///< balance slack
    uint64_t seed = 1;
    int refinePasses = 4;
    size_t coarsenTarget = 0;   ///< 0 = auto (16*k, min 64)
};

/** Connectivity-1 objective: Σ_e w(e) · (λ(e) − 1). */
uint64_t connectivityCost(const Hypergraph &hg,
                          const std::vector<uint32_t> &part, uint32_t k);

/** Cut-net objective: Σ_{e : λ(e)>1} w(e). */
uint64_t cutCost(const Hypergraph &hg, const std::vector<uint32_t> &part);

/**
 * Multilevel k-way partition minimizing connectivity-1 under the
 * balance constraint (per-part node weight ≤ (1+ε)·total/k).
 * Returns the part id of each node.
 */
std::vector<uint32_t> partitionHypergraph(const Hypergraph &hg,
                                          const HgOptions &opt);

} // namespace parendi::partition

#endif // PARENDI_PARTITION_HYPERGRAPH_HH
