#include "partition/strategy.hh"

#include <algorithm>
#include <map>
#include <numeric>

#include "partition/hypergraph.hh"
#include "util/logging.hh"

namespace parendi::partition {

using fiber::FiberSet;

uint64_t
offChipCutBytes(const FiberSet &fs, const std::vector<Process> &procs)
{
    const rtl::Netlist &nl = fs.netlist();
    std::vector<int> writer_chip(nl.numRegisters(), -1);
    for (const Process &p : procs)
        for (rtl::RegId r : p.regsOwned)
            writer_chip[r] = p.chip;
    // (register, remote chip) pairs.
    std::vector<std::vector<int>> remote(nl.numRegisters());
    for (const Process &p : procs)
        for (rtl::RegId r : p.regsRead)
            if (writer_chip[r] >= 0 && writer_chip[r] != p.chip)
                remote[r].push_back(p.chip);
    uint64_t cut = 0;
    for (rtl::RegId r = 0; r < nl.numRegisters(); ++r) {
        auto &v = remote[r];
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        cut += v.size() * fs.regBytes(r);
    }
    return cut;
}

namespace {

/**
 * RepCut-style strategy (paper §6.4.1, "H"): hypernodes are fibers
 * weighted by their full execution time; hyperedges are shared
 * computation nodes weighted by their cost, so a balanced min-
 * connectivity partition minimizes duplicated work. One part per tile.
 */
Partitioning
hypergraphSingleChip(const FiberSet &fs, uint32_t tiles, uint64_t seed)
{
    Hypergraph hg;
    for (size_t i = 0; i < fs.size(); ++i)
        hg.addNode(std::max<uint64_t>(fs[i].totalIpu, 1));

    // Collapse shared nodes with identical fiber sets into one
    // hyperedge with summed weight.
    std::map<std::vector<uint32_t>, uint64_t> edges;
    std::vector<std::vector<uint32_t>> node_fibers(fs.numShared());
    for (uint32_t fi = 0; fi < fs.size(); ++fi)
        fs[fi].shared.forEach([&](size_t s) {
            node_fibers[s].push_back(fi);
        });
    const auto &weights = fs.sharedIpu();
    for (size_t s = 0; s < fs.numShared(); ++s)
        if (node_fibers[s].size() >= 2)
            edges[node_fibers[s]] += std::max<uint64_t>(weights[s], 1);
    for (auto &[pin_set, w] : edges)
        hg.addEdge(w, pin_set);
    hg.buildIncidence();

    HgOptions opt;
    opt.k = std::min<uint32_t>(tiles, static_cast<uint32_t>(fs.size()));
    opt.seed = seed;
    opt.epsilon = 0.10;
    std::vector<uint32_t> part = partitionHypergraph(hg, opt);

    // Materialize one process per nonempty part.
    std::vector<std::vector<uint32_t>> groups(opt.k);
    for (uint32_t fi = 0; fi < fs.size(); ++fi)
        groups[part[fi]].push_back(fi);
    Partitioning result;
    for (auto &g : groups) {
        if (g.empty())
            continue;
        Process p = Process::fromFiber(fs, g[0]);
        for (size_t i = 1; i < g.size(); ++i)
            p = Process::merged(fs, p, Process::fromFiber(fs, g[i]));
        result.processes.push_back(std::move(p));
    }
    return result;
}

/** Balance part sizes to at most @p cap processes per chip by moving
 *  the cheapest processes out of overfull chips. */
void
enforceChipCapacity(std::vector<Process> &procs, uint32_t chips,
                    uint32_t cap)
{
    std::vector<std::vector<uint32_t>> by_chip(chips);
    for (uint32_t i = 0; i < procs.size(); ++i)
        by_chip[procs[i].chip].push_back(i);
    for (uint32_t c = 0; c < chips; ++c) {
        auto &v = by_chip[c];
        while (v.size() > cap) {
            // Cheapest process moves to the emptiest chip.
            auto it = std::min_element(
                v.begin(), v.end(), [&](uint32_t a, uint32_t b) {
                    return procs[a].ipuCost < procs[b].ipuCost;
                });
            uint32_t victim = *it;
            v.erase(it);
            uint32_t dest = 0;
            for (uint32_t d = 1; d < chips; ++d)
                if (by_chip[d].size() < by_chip[dest].size())
                    dest = d;
            procs[victim].chip = static_cast<int>(dest);
            by_chip[dest].push_back(victim);
        }
    }
}

} // namespace

Partitioning
partitionDesign(const FiberSet &fs, const PartitionOptions &opt,
                MergeStats *stats)
{
    if (opt.single == SingleChipStrategy::Hypergraph) {
        if (opt.chips != 1)
            fatal("hypergraph (H) strategy supports a single chip");
        Partitioning p =
            hypergraphSingleChip(fs, opt.tilesPerChip, opt.merge.seed);
        p.checkComplete(fs);
        if (stats) {
            *stats = MergeStats{};
            stats->fibers = fs.size();
            stats->afterStage4 = p.processes.size();
            stats->stragglerIpu = fs.maxFiberIpu();
            stats->finalMakespanIpu = p.makespanIpu();
        }
        return p;
    }

    if (opt.chips <= 1 || opt.multi == MultiChipStrategy::Pre)
        return bottomUpPartition(fs, opt.chips, opt.tilesPerChip,
                                 opt.merge, stats);

    // Post / None: merge chip-obliviously to the total tile budget
    // first, then distribute processes across chips.
    MergeStats local;
    local.fibers = fs.size();
    local.stragglerIpu = fs.maxFiberIpu();
    std::vector<Process> procs = initialProcesses(fs, opt.merge);
    local.afterStage1 = procs.size();
    procs = mergeToTiles(fs, std::move(procs),
                         opt.chips * opt.tilesPerChip, opt.merge);

    if (opt.multi == MultiChipStrategy::Post) {
        // Partition the finished processes across chips, minimizing
        // the register cut (balanced by process count).
        const rtl::Netlist &nl = fs.netlist();
        Hypergraph hg;
        for (const Process &p : procs) {
            (void)p;
            hg.addNode(1);
        }
        std::vector<std::vector<uint32_t>> touching(nl.numRegisters());
        for (uint32_t pi = 0; pi < procs.size(); ++pi) {
            for (rtl::RegId r : procs[pi].regsRead)
                touching[r].push_back(pi);
            for (rtl::RegId r : procs[pi].regsOwned)
                touching[r].push_back(pi);
        }
        for (rtl::RegId r = 0; r < nl.numRegisters(); ++r)
            hg.addEdge((nl.reg(r).width + 31) / 32, touching[r]);
        hg.buildIncidence();
        HgOptions hopt;
        hopt.k = opt.chips;
        hopt.seed = opt.merge.seed;
        std::vector<uint32_t> part = partitionHypergraph(hg, hopt);
        for (uint32_t pi = 0; pi < procs.size(); ++pi)
            procs[pi].chip = static_cast<int>(part[pi]);
    } else {
        // None: deal processes out round-robin, chip-oblivious.
        for (uint32_t pi = 0; pi < procs.size(); ++pi)
            procs[pi].chip = static_cast<int>(pi % opt.chips);
    }
    enforceChipCapacity(procs, opt.chips, opt.tilesPerChip);

    Partitioning result;
    result.processes = std::move(procs);
    result.checkComplete(fs);
    local.afterStage4 = result.processes.size();
    local.finalMakespanIpu = result.makespanIpu();
    local.offChipCutBytes = offChipCutBytes(fs, result.processes);
    if (stats)
        *stats = local;
    return result;
}

} // namespace parendi::partition
