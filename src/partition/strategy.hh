/**
 * @file
 * Top-level partitioning strategies evaluated in the paper:
 *
 *  - Single chip (§6.4.1): the default bottom-up merge (B) versus the
 *    RepCut-style hypergraph partitioning of duplicated computation (H).
 *  - Multi chip (§6.4.2): partition fibers across chips before merging
 *    (Pre, the default), partition finished processes (Post), or ignore
 *    chip boundaries entirely (None).
 */

#ifndef PARENDI_PARTITION_STRATEGY_HH
#define PARENDI_PARTITION_STRATEGY_HH

#include "partition/merge.hh"

namespace parendi::partition {

enum class SingleChipStrategy
{
    BottomUp,    ///< paper §5.1 (strategy "B")
    Hypergraph,  ///< RepCut-style replication-aware cut (strategy "H")
};

enum class MultiChipStrategy
{
    Pre,   ///< partition fibers across chips, then merge (default)
    Post,  ///< merge first, then partition processes across chips
    None,  ///< chip-oblivious: merge, deal out round-robin
};

struct PartitionOptions
{
    uint32_t chips = 1;
    uint32_t tilesPerChip = 1472;
    SingleChipStrategy single = SingleChipStrategy::BottomUp;
    MultiChipStrategy multi = MultiChipStrategy::Pre;
    MergeOptions merge;
};

/** Off-chip register traffic (bytes/cycle) implied by an assignment,
 *  counting each (register, remote chip) pair once. */
uint64_t offChipCutBytes(const fiber::FiberSet &fs,
                         const std::vector<Process> &procs);

/** Partition a design according to @p opt. */
Partitioning partitionDesign(const fiber::FiberSet &fs,
                             const PartitionOptions &opt,
                             MergeStats *stats = nullptr);

} // namespace parendi::partition

#endif // PARENDI_PARTITION_STRATEGY_HH
