/**
 * @file
 * The `parendi` command-line driver: compile a Verilog (.v) or PNL
 * (.pnl) design and run it on one of the functional engines.
 *
 *   parendi [options] <design.v|design.pnl>
 *     --cycles N        simulate N cycles (default 1000)
 *     --engine E        interp | event | ipu | par | cgen (default ipu)
 *     --threads N       host worker threads for ipu/par engines
 *     --cgen            JIT-compile shard programs to native kernels
 *                       (par engine; cgen engine implies it)
 *     --tiles N         tiles per chip (default 1472, ipu engine)
 *     --chips N         IPU chips, 1-4 (default 1, ipu engine)
 *     --strategy B|H    single-chip partitioning (default B)
 *     --multi pre|post|none   multi-chip strategy (default pre)
 *     --no-opt          disable the netlist optimizer
 *     --no-diff         disable differential array exchange
 *     --vcd FILE        trace registers/outputs to a VCD file
 *                       (on whichever engine is selected)
 *     --report          print the compile/performance report only
 *                       (ipu engine)
 *     --peek NAME       print output port NAME after the run
 *                       (repeatable)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "core/engine.hh"
#include "core/stats.hh"
#include "frontend/pnl.hh"
#include "frontend/verilog.hh"
#include "rtl/vcd.hh"
#include "util/logging.hh"

using namespace parendi;

namespace {

struct Args
{
    std::string file;
    uint64_t cycles = 1000;
    std::string engine = "ipu";
    uint32_t threads = 0;
    uint32_t tiles = 1472;
    uint32_t chips = 1;
    bool hyper = false;
    std::string multi = "pre";
    bool optimize = true;
    bool diffExchange = true;
    std::string vcdPath;
    bool reportOnly = false;
    bool cgen = false;
    std::vector<std::string> peeks;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: parendi [--cycles N] "
                 "[--engine interp|event|ipu|par|cgen] [--threads N]\n"
                 "               [--cgen] [--tiles N] [--chips N] "
                 "[--strategy B|H]\n"
                 "               [--multi pre|post|none] [--no-opt] "
                 "[--no-diff]\n"
                 "               [--vcd FILE] [--report] "
                 "[--peek NAME]... <design.v|design.pnl>\n");
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--cycles")
            a.cycles = std::stoull(value());
        else if (arg == "--engine")
            a.engine = value();
        else if (arg == "--threads")
            a.threads = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--tiles")
            a.tiles = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--chips")
            a.chips = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--strategy")
            a.hyper = value() == "H";
        else if (arg == "--multi")
            a.multi = value();
        else if (arg == "--no-opt")
            a.optimize = false;
        else if (arg == "--no-diff")
            a.diffExchange = false;
        else if (arg == "--vcd")
            a.vcdPath = value();
        else if (arg == "--report")
            a.reportOnly = true;
        else if (arg == "--cgen")
            a.cgen = true;
        else if (arg == "--peek")
            a.peeks.push_back(value());
        else if (arg.rfind("--", 0) == 0)
            usage();
        else if (a.file.empty())
            a.file = arg;
        else
            usage();
    }
    if (a.file.empty())
        usage();
    return a;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
            0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    try {
        rtl::Netlist nl = endsWith(args.file, ".pnl")
            ? frontend::parsePnlFile(args.file)
            : frontend::parseVerilogFile(args.file);
        std::printf("parsed %s: %s\n", args.file.c_str(),
                    rtl::describe(nl).c_str());

        core::EngineKind kind = core::parseEngineKind(args.engine);

        // Every engine is driven through the SimEngine interface;
        // the ipu engine keeps the full compile path so the report
        // and machine-shape flags apply.
        std::unique_ptr<core::Simulation> sim;
        std::unique_ptr<core::SimEngine> owned;
        core::SimEngine *engine = nullptr;
        if (kind == core::EngineKind::Ipu) {
            if (args.cgen)
                warn("--cgen is not supported by the ipu engine; "
                     "ignoring");
            core::CompilerOptions opt;
            opt.chips = args.chips;
            opt.tilesPerChip = args.tiles;
            opt.optimize = args.optimize;
            opt.machine.differentialExchange = args.diffExchange;
            opt.machine.hostThreads = args.threads;
            if (args.hyper)
                opt.single = partition::SingleChipStrategy::Hypergraph;
            if (args.multi == "post")
                opt.multi = partition::MultiChipStrategy::Post;
            else if (args.multi == "none")
                opt.multi = partition::MultiChipStrategy::None;
            else if (args.multi != "pre")
                usage();

            sim = core::compile(std::move(nl), opt);
            engine = &sim->machine();

            const core::CompileReport &r = sim->report();
            std::printf("compiled in %.3fs: %zu fibers -> %zu "
                        "processes on %u chip(s); optimizer removed "
                        "%zu of %zu nodes\n",
                        r.compileSeconds, r.fibers, r.processes,
                        r.chips,
                        r.optStats.nodesBefore - r.optStats.nodesAfter,
                        r.optStats.nodesBefore);
            const ipu::CycleCosts &c = sim->cycleCosts();
            std::printf("model: %.2f kHz (t_comp=%.0f t_comm=%.0f "
                        "t_sync=%.0f IPU cycles/RTL cycle); max tile "
                        "memory %.1f KiB\n",
                        sim->rateKHz(), c.tComp, c.tComm(), c.tSync,
                        static_cast<double>(r.maxTileMemBytes) /
                            1024.0);
            if (args.reportOnly) {
                std::printf("%s",
                            core::describeSimulation(*sim).c_str());
                return 0;
            }
        } else {
            if (args.reportOnly)
                fatal("--report requires --engine ipu");
            core::EngineOptions eopt;
            eopt.kind = kind;
            eopt.threads = args.threads;
            eopt.cgen = args.cgen;
            if (args.optimize)
                nl = rtl::optimize(std::move(nl));
            owned = core::makeEngine(std::move(nl), eopt);
            engine = owned.get();
        }

        if (!args.vcdPath.empty()) {
            std::ofstream vcd(args.vcdPath);
            if (!vcd)
                fatal("cannot write %s", args.vcdPath.c_str());
            rtl::EngineTracer tracer(*engine, vcd);
            tracer.step(args.cycles);
            std::printf("traced %llu cycles to %s (engine %s)\n",
                        static_cast<unsigned long long>(args.cycles),
                        args.vcdPath.c_str(), engine->engineName());
        } else {
            engine->step(args.cycles);
            std::printf("simulated %llu cycles (engine %s)\n",
                        static_cast<unsigned long long>(args.cycles),
                        engine->engineName());
        }
        for (const std::string &p : args.peeks)
            std::printf("%s = 0x%s\n", p.c_str(),
                        engine->peek(p).toHex().c_str());
        return 0;
    } catch (const FatalError &) {
        return 1;
    }
}
