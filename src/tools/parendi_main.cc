/**
 * @file
 * The `parendi` command-line driver: compile a Verilog (.v) or PNL
 * (.pnl) design — or generate a built-in benchmark design — and run it
 * on one of the functional engines.
 *
 *   parendi [options] <design.v|design.pnl>
 *   parendi [options] --design NAME
 *     --design NAME     run a built-in benchmark design instead of a
 *                       file: pico, rocket, bitcoin, mc, vta, srN,
 *                       lrN, prngN
 *     --cycles N        simulate N cycles (default 1000)
 *     --engine E        interp | event | ipu | par | cgen (default ipu)
 *     --threads N       host worker threads for ipu/par engines
 *     --cgen            JIT-compile shard programs to native kernels
 *                       (par engine; cgen engine implies it)
 *     --fused 0|1       fused single-barrier supersteps for the
 *                       par/ipu host paths (default 1; 0 = the
 *                       4-barrier phased A/B path)
 *     --batch N         fused path: cycles per pool dispatch
 *                       (default 0 = one batch per step call)
 *     --replicas N      gang simulation: step N independent replicas
 *                       of the design in lock-step (SoA lanes; interp,
 *                       cgen and par engines). Scalar pokes drive all
 *                       lanes, scalar peeks read lane 0.
 *     --activity 0|1    activity-guarded evaluation (default 1): skip
 *                       combinational groups whose inputs are
 *                       unchanged since the previous cycle.
 *                       Bit-identical to always-eval; 0 is the A/B
 *                       baseline. interp, cgen and par engines.
 *     --cost-profile FILE  measured per-fiber cost profile: consumed
 *                       before the run (if FILE exists, the par
 *                       engine's LPT partition packs on the measured
 *                       costs) and emitted after it (the run's
 *                       per-shard eval ticks attributed back to
 *                       fibers). Implies --profile.
 *     --rebalance R     telemetry-directed repartitioning (par
 *                       engine, with --batch): when the measured
 *                       per-shard eval skew max/mean exceeds R
 *                       between batches, re-run LPT on measured costs
 *                       and migrate state. Implies --profile. 0 = off.
 *     --tiles N         tiles per chip (default 1472, ipu engine)
 *     --chips N         IPU chips, 1-4 (default 1, ipu engine)
 *     --strategy B|H    single-chip partitioning (default B)
 *     --multi pre|post|none   multi-chip strategy (default pre)
 *     --no-opt          disable the netlist optimizer
 *     --no-diff         disable differential array exchange
 *     --vcd FILE        trace registers/outputs to a VCD file
 *                       (on whichever engine is selected)
 *     --wave FILE       trace the same signals to a compressed wave
 *                       stream (src/ckpt/wave.hh); expand with
 *                       `parendi wave2vcd FILE OUT.vcd`. Mutually
 *                       exclusive with --vcd
 *     --save FILE       write a checkpoint after the run (v2 compact
 *                       snapshot; see DESIGN.md "Checkpoint & replay")
 *     --save-every N    with --save: snapshot every N cycles into one
 *                       delta-coded chain (record 0 is the pre-run
 *                       state)
 *     --restore FILE    restore a checkpoint (v0/v1/v2) before the run
 *     --restore-at K    with --restore: restore snapshot record K of a
 *                       v2 chain instead of the last
 *     --journal FILE    record the run's stimulus (steps, snapshot
 *                       markers) as a deterministic replay journal
 *     --replay FILE     replay a journal instead of running --cycles;
 *                       with --restore, resumes from the restored
 *                       snapshot's marker
 *     --checksum        print the FNV digest of the final
 *                       architectural state (bit-identical across
 *                       engines, thread counts, and save/restore)
 *     --report          print the compile/performance report only
 *                       (ipu engine)
 *     --peek NAME       print output port NAME after the run
 *                       (repeatable)
 *     --profile         measure the r_cycle decomposition at runtime
 *                       (obs::SuperstepProfiler) and print the
 *                       measured t_comp/t_comm/t_sync split, the
 *                       per-shard straggler histogram, and the
 *                       modeled-vs-measured table after the run
 *     --profile-every N timestamp every Nth cycle (default 16;
 *                       1 = every cycle)
 *     --profile-trace FILE  export the sampled supersteps as a Chrome
 *                       trace-event JSON (chrome://tracing, Perfetto)
 *
 * Server mode (no design argument; see DESIGN.md "Serving layer"):
 *   parendi --serve PORT [--threads N] [--max-sessions N] [--quantum N]
 *     --serve PORT      host a multi-session simulation service on
 *                       127.0.0.1:PORT (0 = pick an ephemeral port;
 *                       the chosen port is printed). Clients create
 *                       sessions by design spec — a builtin name or a
 *                       .v/.pnl path — and drive them over the binary
 *                       protocol (serve::Client). --threads sizes the
 *                       ONE BspPool all sessions share; --quantum is
 *                       the fair-share DRR grant in cycles. The
 *                       artifact store honors $PARENDI_ARTIFACT_DIR
 *                       and $PARENDI_ARTIFACT_BYTES.
 *
 * Subcommands:
 *   parendi wave2vcd IN OUT   expand a compressed wave stream
 *                       (--wave) to a VCD byte-identical to what
 *                       --vcd would have produced on the same run
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/journal.hh"
#include "ckpt/snapshot.hh"
#include "ckpt/wave.hh"
#include "core/compiler.hh"
#include "core/engine.hh"
#include "core/session.hh"
#include "core/stats.hh"
#include "designs/designs.hh"
#include "fiber/fiber.hh"
#include "frontend/pnl.hh"
#include "frontend/verilog.hh"
#include "obs/costprofile.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "rtl/vcd.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "util/logging.hh"
#include "x86/model.hh"

using namespace parendi;

namespace {

struct Args
{
    std::string file;
    std::string design;
    uint64_t cycles = 1000;
    std::string engine = "ipu";
    uint32_t threads = 0;
    uint32_t tiles = 1472;
    uint32_t chips = 1;
    bool hyper = false;
    std::string multi = "pre";
    bool optimize = true;
    bool diffExchange = true;
    std::string vcdPath;
    std::string wavePath;
    std::string savePath;
    uint64_t saveEvery = 0;
    std::string restorePath;
    int64_t restoreAt = -1;
    std::string journalPath;
    std::string replayPath;
    bool checksum = false;
    bool reportOnly = false;
    bool cgen = false;
    bool fused = true;
    uint64_t batch = 0;
    uint32_t replicas = 1;
    bool activity = true;
    std::string costProfile;
    double rebalance = 0.0;
    bool profile = false;
    uint64_t profileEvery = 16;
    std::string profileTrace;
    std::vector<std::string> peeks;
    bool serve = false;
    uint16_t servePort = 0;
    uint32_t maxSessions = 64;
    uint64_t quantum = 1024;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: parendi [--cycles N] "
                 "[--engine interp|event|ipu|par|cgen] [--threads N]\n"
                 "               [--cgen] [--tiles N] [--chips N] "
                 "[--strategy B|H]\n"
                 "               [--multi pre|post|none] [--no-opt] "
                 "[--no-diff]\n"
                 "               [--vcd FILE] [--wave FILE] [--report] "
                 "[--peek NAME]...\n"
                 "               [--fused 0|1] [--batch N] "
                 "[--replicas N] [--activity 0|1]\n"
                 "               [--cost-profile FILE] [--rebalance R]\n"
                 "               [--save FILE] [--save-every N] "
                 "[--restore FILE] [--restore-at K]\n"
                 "               [--journal FILE] [--replay FILE] "
                 "[--checksum]\n"
                 "               [--profile] [--profile-every N] "
                 "[--profile-trace FILE]\n"
                 "               <design.v|design.pnl> | --design NAME\n"
                 "       parendi wave2vcd IN OUT\n"
                 "       parendi --serve PORT [--threads N] "
                 "[--max-sessions N] [--quantum N]\n");
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--cycles")
            a.cycles = std::stoull(value());
        else if (arg == "--engine")
            a.engine = value();
        else if (arg == "--threads")
            a.threads = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--tiles")
            a.tiles = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--chips")
            a.chips = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--strategy")
            a.hyper = value() == "H";
        else if (arg == "--multi")
            a.multi = value();
        else if (arg == "--no-opt")
            a.optimize = false;
        else if (arg == "--no-diff")
            a.diffExchange = false;
        else if (arg == "--vcd")
            a.vcdPath = value();
        else if (arg == "--wave")
            a.wavePath = value();
        else if (arg == "--save")
            a.savePath = value();
        else if (arg == "--save-every")
            a.saveEvery = std::stoull(value());
        else if (arg == "--restore")
            a.restorePath = value();
        else if (arg == "--restore-at")
            a.restoreAt = std::stoll(value());
        else if (arg == "--journal")
            a.journalPath = value();
        else if (arg == "--replay")
            a.replayPath = value();
        else if (arg == "--checksum")
            a.checksum = true;
        else if (arg == "--report")
            a.reportOnly = true;
        else if (arg == "--cgen")
            a.cgen = true;
        else if (arg == "--fused")
            a.fused = std::stoul(value()) != 0;
        else if (arg == "--batch")
            a.batch = std::stoull(value());
        else if (arg == "--replicas")
            a.replicas = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--design")
            a.design = value();
        else if (arg == "--activity")
            a.activity = std::stoul(value()) != 0;
        else if (arg == "--cost-profile") {
            a.costProfile = value();
            a.profile = true;   // emitting needs measured eval ticks
        } else if (arg == "--rebalance") {
            a.rebalance = std::stod(value());
            a.profile = true;   // the skew check reads the profiler
        } else if (arg == "--profile")
            a.profile = true;
        else if (arg == "--profile-every") {
            a.profileEvery = std::stoull(value());
            a.profile = true;
        } else if (arg == "--profile-trace") {
            a.profileTrace = value();
            a.profile = true;
        } else if (arg == "--peek")
            a.peeks.push_back(value());
        else if (arg == "--serve") {
            a.serve = true;
            a.servePort = static_cast<uint16_t>(std::stoul(value()));
        } else if (arg == "--max-sessions")
            a.maxSessions = static_cast<uint32_t>(std::stoul(value()));
        else if (arg == "--quantum")
            a.quantum = std::stoull(value());
        else if (arg.rfind("--", 0) == 0)
            usage();
        else if (a.file.empty())
            a.file = arg;
        else
            usage();
    }
    if (a.serve) {
        if (!a.file.empty() || !a.design.empty())
            usage();
    } else if (a.file.empty() == a.design.empty())
        usage();
    if (a.profileEvery == 0)
        a.profileEvery = 1;
    if (!a.vcdPath.empty() && !a.wavePath.empty())
        fatal("--vcd and --wave are mutually exclusive (wave2vcd "
              "expands a wave stream to the identical VCD)");
    if (a.saveEvery > 0 && a.savePath.empty())
        fatal("--save-every requires --save FILE");
    if (a.restoreAt >= 0 && a.restorePath.empty())
        fatal("--restore-at requires --restore FILE");
    if (!a.replayPath.empty() &&
        !(a.journalPath.empty() && a.vcdPath.empty() &&
          a.wavePath.empty() && a.saveEvery == 0))
        fatal("--replay drives the engine from the journal; it cannot "
              "be combined with --journal, --vcd, --wave, or "
              "--save-every");
    return a;
}

/** Build a built-in benchmark design by name (the bench harness
 *  spelling: pico, rocket, bitcoin, mc, vta, srN, lrN, prngN). */
rtl::Netlist
makeNamedDesign(const std::string &name)
{
    using namespace designs;
    if (name == "pico")
        return makePico(defaultCoreConfig());
    if (name == "rocket")
        return makeRocket(defaultCoreConfig());
    if (name == "bitcoin")
        return makeBitcoin({4, 16});
    if (name == "mc")
        return makeMc(McConfig{});
    if (name == "vta")
        return makeVta(VtaConfig{});
    if (name.rfind("sr", 0) == 0)
        return makeSr(static_cast<uint32_t>(std::stoul(name.substr(2))));
    if (name.rfind("lr", 0) == 0)
        return makeLr(static_cast<uint32_t>(std::stoul(name.substr(2))));
    if (name.rfind("prng", 0) == 0)
        return makePrngBank(
            static_cast<uint32_t>(std::stoul(name.substr(4))));
    if (name == "gated")
        return makeGated(GatedConfig{});
    if (name.rfind("gated", 0) == 0) {
        GatedConfig gc;
        gc.units = static_cast<uint32_t>(std::stoul(name.substr(5)));
        return makeGated(gc);
    }
    fatal("unknown design %s (expected pico|rocket|bitcoin|mc|vta|"
          "srN|lrN|prngN|gated[N])", name.c_str());
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
            0;
}

/** `parendi --serve PORT`: host sessions until a client sends
 *  Shutdown (or the process is killed). */
int
runServe(const Args &args)
{
    serve::ManagerOptions mopt;
    mopt.maxSessions = args.maxSessions;
    mopt.poolThreads = args.threads;
    mopt.quantumCycles = args.quantum ? args.quantum : 1024;
    // A design spec is a builtin name or a netlist file path — the
    // same resolution the CLI's positional argument gets, optimizer
    // included.
    mopt.resolveDesign = [](const std::string &spec) {
        rtl::Netlist nl;
        if (endsWith(spec, ".pnl"))
            nl = frontend::parsePnlFile(spec);
        else if (endsWith(spec, ".v"))
            nl = frontend::parseVerilogFile(spec);
        else
            nl = makeNamedDesign(spec);
        return rtl::optimize(std::move(nl));
    };
    serve::SessionManager manager(std::move(mopt));
    serve::Server server(manager, args.servePort);
    std::printf("parendi: serving on 127.0.0.1:%u (pool %u threads, "
                "quantum %llu cycles, max %u sessions)\n",
                static_cast<unsigned>(server.port()),
                manager.pool() ? manager.pool()->threads() : 1,
                static_cast<unsigned long long>(mopt.quantumCycles),
                args.maxSessions);
    std::fflush(stdout);    // scripts parse the port line
    server.serveForever();
    std::printf("parendi: server shut down (%zu sessions left)\n",
                manager.numSessions());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 2 && std::strcmp(argv[1], "wave2vcd") == 0) {
            if (argc != 4)
                usage();
            std::ifstream in(argv[2], std::ios::binary);
            if (!in)
                fatal("cannot read %s", argv[2]);
            std::ofstream out(argv[3]);
            if (!out)
                fatal("cannot write %s", argv[3]);
            uint64_t n = ckpt::waveToVcd(in, out);
            std::printf("wave2vcd: %llu samples -> %s\n",
                        static_cast<unsigned long long>(n), argv[3]);
            return 0;
        }
        Args args = parseArgs(argc, argv);
        if (args.serve)
            return runServe(args);
        rtl::Netlist nl;
        if (!args.design.empty()) {
            nl = makeNamedDesign(args.design);
            std::printf("generated %s: %s\n", args.design.c_str(),
                        rtl::describe(nl).c_str());
        } else {
            nl = endsWith(args.file, ".pnl")
                ? frontend::parsePnlFile(args.file)
                : frontend::parseVerilogFile(args.file);
            std::printf("parsed %s: %s\n", args.file.c_str(),
                        rtl::describe(nl).c_str());
        }

        core::EngineKind kind = core::parseEngineKind(args.engine);

        // Every engine is driven through the SimEngine interface;
        // the ipu engine keeps the full compile path so the report
        // and machine-shape flags apply.
        std::unique_ptr<core::Simulation> sim;
        std::unique_ptr<core::SimEngine> owned;
        core::SimEngine *engine = nullptr;
        if (kind == core::EngineKind::Ipu) {
            if (args.cgen)
                warn("--cgen is not supported by the ipu engine; "
                     "ignoring");
            if (args.replicas > 1)
                warn("--replicas is not supported by the ipu engine; "
                     "running a single replica");
            core::CompilerOptions opt;
            opt.chips = args.chips;
            opt.tilesPerChip = args.tiles;
            opt.optimize = args.optimize;
            opt.machine.differentialExchange = args.diffExchange;
            opt.machine.hostThreads = args.threads;
            opt.machine.fused = args.fused;
            opt.machine.batch = args.batch;
            if (args.hyper)
                opt.single = partition::SingleChipStrategy::Hypergraph;
            if (args.multi == "post")
                opt.multi = partition::MultiChipStrategy::Post;
            else if (args.multi == "none")
                opt.multi = partition::MultiChipStrategy::None;
            else if (args.multi != "pre")
                usage();

            sim = core::compile(std::move(nl), opt);
            engine = &sim->machine();
            if (args.profile) {
                obs::ProfileOptions popt;
                popt.sampleEvery = args.profileEvery;
                engine->enableProfiling(popt);
            }

            const core::CompileReport &r = sim->report();
            std::printf("compiled in %.3fs: %zu fibers -> %zu "
                        "processes on %u chip(s); optimizer removed "
                        "%zu of %zu nodes\n",
                        r.compileSeconds, r.fibers, r.processes,
                        r.chips,
                        r.optStats.nodesBefore - r.optStats.nodesAfter,
                        r.optStats.nodesBefore);
            const ipu::CycleCosts &c = sim->cycleCosts();
            std::printf("model: %.2f kHz (t_comp=%.0f t_comm=%.0f "
                        "t_sync=%.0f IPU cycles/RTL cycle); max tile "
                        "memory %.1f KiB\n",
                        sim->rateKHz(), c.tComp, c.tComm(), c.tSync,
                        static_cast<double>(r.maxTileMemBytes) /
                            1024.0);
            if (args.reportOnly) {
                std::printf("%s",
                            core::describeSimulation(*sim).c_str());
                return 0;
            }
        } else {
            if (args.reportOnly)
                fatal("--report requires --engine ipu");
            core::EngineOptions eopt;
            eopt.kind = kind;
            eopt.threads = args.threads;
            eopt.cgen = args.cgen;
            eopt.fused = args.fused;
            eopt.batch = args.batch;
            eopt.replicas = args.replicas;
            eopt.profile = args.profile;
            eopt.profileOpt.sampleEvery = args.profileEvery;
            eopt.activity = args.activity;
            eopt.rebalance = args.rebalance;
            // --cost-profile is consumed when the file already exists
            // (a previous run wrote it) and emitted after this run
            // either way — the two runs close the telemetry loop.
            if (!args.costProfile.empty() &&
                std::ifstream(args.costProfile).good())
                eopt.costProfileIn = args.costProfile;
            if (args.optimize)
                nl = rtl::optimize(std::move(nl));
            owned = core::makeEngine(std::move(nl), eopt);
            engine = owned.get();
        }

        // Restore before the run (the run continues from the
        // snapshot). --restore-at and --replay walk the v2 snapshot
        // chain directly — replay needs to know which snapshot marker
        // to resume from; the plain path accepts any format (v0/v1/v2)
        // through the versioned envelope dispatch.
        int64_t restoredSeq = -1;
        if (!args.restorePath.empty()) {
            std::ifstream in(args.restorePath, std::ios::binary);
            if (!in)
                fatal("cannot read %s", args.restorePath.c_str());
            if (args.restoreAt >= 0 || !args.replayPath.empty()) {
                uint64_t applied = ckpt::restoreSnapshotChain(
                    in, *engine, args.restoreAt);
                restoredSeq = static_cast<int64_t>(applied) - 1;
            } else {
                core::restoreCheckpoint(*engine, in);
            }
            std::printf("restored %s at cycle %llu\n",
                        args.restorePath.c_str(),
                        static_cast<unsigned long long>(
                            engine->cycles()));
        }

        if (!args.replayPath.empty()) {
            // The journal drives the engine; --cycles is ignored.
            std::ifstream in(args.replayPath, std::ios::binary);
            if (!in)
                fatal("cannot read %s", args.replayPath.c_str());
            uint64_t applied =
                ckpt::replayJournal(in, *engine, restoredSeq);
            std::printf("replayed %llu journal records to cycle %llu "
                        "(engine %s)\n",
                        static_cast<unsigned long long>(applied),
                        static_cast<unsigned long long>(
                            engine->cycles()),
                        engine->engineName());
        } else {
            std::ofstream journalOut;
            std::unique_ptr<ckpt::JournalWriter> journal;
            if (!args.journalPath.empty()) {
                journalOut.open(args.journalPath, std::ios::binary);
                if (!journalOut)
                    fatal("cannot write %s", args.journalPath.c_str());
                journal = std::make_unique<ckpt::JournalWriter>(
                    journalOut, engine->netlist());
            }

            std::ofstream vcdOut;
            std::ofstream waveOut;
            std::unique_ptr<rtl::EngineTracer> vcd;
            std::unique_ptr<ckpt::WaveTracer> wave;
            if (!args.vcdPath.empty()) {
                vcdOut.open(args.vcdPath);
                if (!vcdOut)
                    fatal("cannot write %s", args.vcdPath.c_str());
                vcd = std::make_unique<rtl::EngineTracer>(*engine,
                                                          vcdOut);
            } else if (!args.wavePath.empty()) {
                waveOut.open(args.wavePath, std::ios::binary);
                if (!waveOut)
                    fatal("cannot write %s", args.wavePath.c_str());
                wave = std::make_unique<ckpt::WaveTracer>(*engine,
                                                          waveOut);
            }
            auto stepSome = [&](uint64_t n) {
                if (vcd)
                    vcd->step(n);
                else if (wave)
                    wave->step(n);
                else
                    engine->step(n);
                if (journal)
                    journal->recordStep(n);
            };

            if (args.saveEvery > 0) {
                // Periodic snapshots: one delta-coded chain, record 0
                // taken before the first step so --restore-at 0
                // --replay reruns the whole journal.
                std::ofstream snapOut(args.savePath, std::ios::binary);
                if (!snapOut)
                    fatal("cannot write %s", args.savePath.c_str());
                ckpt::SnapshotWriter writer(snapOut,
                                            engine->netlist());
                writer.write(*engine);
                if (journal)
                    journal->recordSnapshot(0, engine->cycles());
                uint64_t done = 0;
                while (done < args.cycles) {
                    uint64_t chunk = std::min<uint64_t>(
                        args.saveEvery, args.cycles - done);
                    stepSome(chunk);
                    writer.write(*engine);
                    if (journal)
                        journal->recordSnapshot(writer.records() - 1,
                                                engine->cycles());
                    done += chunk;
                }
                std::printf("saved %u snapshots to %s\n",
                            writer.records(), args.savePath.c_str());
            } else {
                stepSome(args.cycles);
                if (!args.savePath.empty()) {
                    std::ofstream out(args.savePath, std::ios::binary);
                    if (!out)
                        fatal("cannot write %s",
                              args.savePath.c_str());
                    core::saveCheckpoint(*engine, out);
                    std::printf("saved checkpoint to %s\n",
                                args.savePath.c_str());
                }
            }

            if (vcd)
                std::printf("traced %llu cycles to %s (engine %s)\n",
                            static_cast<unsigned long long>(
                                args.cycles),
                            args.vcdPath.c_str(),
                            engine->engineName());
            else if (wave)
                std::printf("traced %llu cycles to %s (engine %s, "
                            "compressed)\n",
                            static_cast<unsigned long long>(
                                args.cycles),
                            args.wavePath.c_str(),
                            engine->engineName());
            else
                std::printf("simulated %llu cycles (engine %s)\n",
                            static_cast<unsigned long long>(
                                args.cycles),
                            engine->engineName());
            if (journal)
                std::printf("journaled %llu records to %s\n",
                            static_cast<unsigned long long>(
                                journal->records()),
                            args.journalPath.c_str());
        }

        if (args.checksum)
            std::printf("checksum = %016llx (cycle %llu)\n",
                        static_cast<unsigned long long>(
                            ckpt::archStateFnv(*engine)),
                        static_cast<unsigned long long>(
                            engine->cycles()));
        for (const std::string &p : args.peeks)
            std::printf("%s = 0x%s\n", p.c_str(),
                        engine->peek(p).toHex().c_str());

        if (const obs::SuperstepProfiler *prof = engine->profiler()) {
            obs::ProfileReport rep = obs::buildReport(*prof);
            std::printf("%s", obs::formatReport(rep).c_str());

            // Modeled counterpart: the IPU cost model for the ipu
            // engine, the x86 Verilator model (at the same thread
            // count) for the host engines.
            if (sim) {
                std::printf("%s",
                            obs::formatModeledVsMeasured(
                                core::modeledSplit(*sim), rep)
                                .c_str());
            } else if (kind != core::EngineKind::Event) {
                fiber::FiberSet fs(engine->netlist());
                x86::DesignProfile dp = x86::profileDesign(fs);
                x86::X86Arch arch = x86::X86Arch::ix3();
                uint32_t mthreads = std::min<uint32_t>(
                    std::max<uint32_t>(1, args.threads),
                    arch.totalCores());
                x86::X86Perf perf =
                    x86::modelVerilator(arch, dp, mthreads);
                obs::ModeledSplit m;
                m.source = "x86 model (ix3)";
                m.unit = "model ns";
                m.comp = perf.tCompNs;
                m.comm = perf.tCommNs;
                m.sync = perf.tSyncNs;
                m.rateKHz = perf.rateKHz();
                std::printf("%s",
                            obs::formatModeledVsMeasured(m, rep)
                                .c_str());
            }

            if (!args.profileTrace.empty()) {
                std::ofstream trace(args.profileTrace);
                if (!trace)
                    fatal("cannot write %s", args.profileTrace.c_str());
                obs::writeChromeTrace(*prof, trace);
                std::printf("wrote Chrome trace to %s (open in "
                            "chrome://tracing or Perfetto)\n",
                            args.profileTrace.c_str());
            }
        } else if (args.profile) {
            warn("--profile had no effect (engine %s)",
                 engine->engineName());
        }

        // Close the telemetry loop: attribute this run's measured eval
        // ticks back to fibers and persist them, so the next run's LPT
        // packs on measured instead of modeled costs.
        if (!args.costProfile.empty()) {
            obs::CostProfile measured;
            if (engine->collectCostProfile(measured) &&
                measured.save(args.costProfile))
                std::printf("wrote cost profile (%zu fibers) to %s\n",
                            measured.size(), args.costProfile.c_str());
            else
                warn("--cost-profile: engine %s produced no measured "
                     "fiber costs", engine->engineName());
        }
        return 0;
    } catch (const FatalError &) {
        return 1;
    }
}
