/**
 * @file
 * A synthesizable-Verilog-subset frontend, standing in for the
 * Verilator-derived parser of the real Parendi. Supports the
 * constructs the paper's benchmarks rely on:
 *
 *  - one module with ANSI-style ports:
 *      module top(input clk, input [7:0] a, output [31:0] y);
 *  - declarations: wire/reg with [msb:0] ranges, optional reg
 *    initializers, and memories: reg [31:0] m [0:255];
 *  - continuous assignment: assign y = expr;  wire w = expr;
 *  - one clock domain: always @(posedge <clk>) with non-blocking
 *    assignments, begin/end, if/else, and case/default
 *  - expressions: ?:, || && | ^ & == != < <= > >= << >> >>> + - *
 *    ~ ! and unary & | ^ reductions, concatenation {a,b}, replication
 *    {4{a}}, constant bit/part selects a[3] / a[7:4], dynamic memory
 *    indexing m[addr], and sized literals (8'hff, 4'b1010, 16'd42)
 *
 * Width rules (simplified, documented): operands of binary operators
 * are zero-extended to the wider operand; assignment RHS is resized
 * to the LHS; comparisons yield 1 bit; >>> is an arithmetic shift of
 * the left operand. Everything is unsigned ($signed is not
 * supported). The clock input is implicit (it does not appear in the
 * netlist); multiple drivers, combinational loops, and writing one
 * register from two always blocks are errors.
 */

#ifndef PARENDI_FRONTEND_VERILOG_HH
#define PARENDI_FRONTEND_VERILOG_HH

#include <string>

#include "rtl/netlist.hh"

namespace parendi::frontend {

/** Parse and elaborate Verilog text. Calls fatal() on errors. */
rtl::Netlist parseVerilog(const std::string &text);

/** Parse a .v file from disk. */
rtl::Netlist parseVerilogFile(const std::string &path);

} // namespace parendi::frontend

#endif // PARENDI_FRONTEND_VERILOG_HH
