/**
 * @file
 * PNL (Parendi NetList) — a simple textual serialization of the RTL IR,
 * standing in for the Verilog frontend of the real Parendi (which forks
 * Verilator's parser). PNL lets users bring their own designs to the
 * compiler without using the C++ builder API.
 *
 * Grammar (line oriented; '#' starts a comment):
 *
 *   pnl 1
 *   design <name>
 *   reg <name> <width> <init-hex>
 *   mem <name> <width> <depth>
 *   meminit <mem> <index> <value-hex>
 *   %<label> = const <width> <value-hex>
 *   %<label> = input <name> <width>
 *   %<label> = regread <reg>
 *   %<label> = memread <mem> %<addr>
 *   %<label> = <unop> %<a>                 # not neg redand redor redxor
 *   %<label> = <binop> %<a> %<b>           # and or xor add sub mul shl
 *                                          # shr sra eq ne ult ule slt sle
 *   %<label> = mux %<sel> %<then> %<else>
 *   %<label> = concat %<hi> %<lo>
 *   %<label> = slice %<a> <lsb> <width>
 *   %<label> = zext %<a> <width>
 *   %<label> = sext %<a> <width>
 *   regnext <reg> %<value>
 *   memwrite <mem> %<addr> %<data> %<en>
 *   output <name> %<value>
 */

#ifndef PARENDI_FRONTEND_PNL_HH
#define PARENDI_FRONTEND_PNL_HH

#include <iosfwd>
#include <string>

#include "rtl/netlist.hh"

namespace parendi::frontend {

/** Parse PNL text into a netlist. Calls fatal() on malformed input. */
rtl::Netlist parsePnl(const std::string &text);

/** Parse a PNL file from disk. */
rtl::Netlist parsePnlFile(const std::string &path);

/** Serialize a netlist to canonical PNL text. */
std::string writePnl(const rtl::Netlist &nl);

/** Serialize a netlist to a file. */
void writePnlFile(const rtl::Netlist &nl, const std::string &path);

} // namespace parendi::frontend

#endif // PARENDI_FRONTEND_PNL_HH
