#include "frontend/pnl.hh"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "rtl/analysis.hh"
#include "util/logging.hh"

namespace parendi::frontend {

using namespace rtl;

namespace {

/** Binary/unary op mnemonics accepted in PNL node lines. */
const std::unordered_map<std::string, Op> &
opTable()
{
    static const std::unordered_map<std::string, Op> table = {
        {"not", Op::Not},       {"neg", Op::Neg},
        {"redand", Op::RedAnd}, {"redor", Op::RedOr},
        {"redxor", Op::RedXor}, {"and", Op::And},
        {"or", Op::Or},         {"xor", Op::Xor},
        {"add", Op::Add},       {"sub", Op::Sub},
        {"mul", Op::Mul},       {"shl", Op::Shl},
        {"shr", Op::Shr},       {"sra", Op::Sra},
        {"eq", Op::Eq},         {"ne", Op::Ne},
        {"ult", Op::Ult},       {"ule", Op::Ule},
        {"slt", Op::Slt},       {"sle", Op::Sle},
    };
    return table;
}

struct Parser
{
    explicit Parser(const std::string &text) : in(text) {}

    std::istringstream in;
    int lineNo = 0;
    std::unordered_map<std::string, NodeId> labels;

    [[noreturn]] void
    err(const std::string &msg)
    {
        fatal("pnl line %d: %s", lineNo, msg.c_str());
    }

    NodeId
    ref(Netlist &nl, const std::string &tok)
    {
        (void)nl;
        if (tok.empty() || tok[0] != '%')
            err("expected %label, got '" + tok + "'");
        auto it = labels.find(tok.substr(1));
        if (it == labels.end())
            err("undefined label " + tok);
        return it->second;
    }

    uint64_t
    num(const std::string &tok)
    {
        try {
            size_t pos = 0;
            uint64_t v = std::stoull(tok, &pos, 10);
            if (pos != tok.size())
                err("bad number '" + tok + "'");
            return v;
        } catch (const std::logic_error &) {
            err("bad number '" + tok + "'");
        }
    }

    Netlist parse();
};

Netlist
Parser::parse()
{
    Netlist nl("pnl");
    bool got_header = false;
    std::string line;
    while (std::getline(in, line)) {
        ++lineNo;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::vector<std::string> tok;
        std::string t;
        while (ls >> t)
            tok.push_back(t);
        if (tok.empty())
            continue;
        if (!got_header) {
            if (tok.size() != 2 || tok[0] != "pnl" || tok[1] != "1")
                err("expected 'pnl 1' header");
            got_header = true;
            continue;
        }
        const std::string &kw = tok[0];
        if (kw == "design") {
            if (tok.size() != 2)
                err("design takes one name");
            nl = Netlist(tok[1]);
            labels.clear();
        } else if (kw == "reg") {
            if (tok.size() != 4)
                err("reg <name> <width> <init-hex>");
            uint16_t w = static_cast<uint16_t>(num(tok[2]));
            nl.addRegister(tok[1], w, BitVec::fromHex(w, tok[3]));
        } else if (kw == "mem") {
            if (tok.size() != 4)
                err("mem <name> <width> <depth>");
            nl.addMemory(tok[1], static_cast<uint16_t>(num(tok[2])),
                         static_cast<uint32_t>(num(tok[3])));
        } else if (kw == "meminit") {
            if (tok.size() != 4)
                err("meminit <mem> <index> <value-hex>");
            MemId m = nl.findMemory(tok[1]);
            if (m == nl.numMemories())
                err("unknown memory " + tok[1]);
            // Accumulate sparse init entries into a dense image.
            const Memory &mem = nl.mem(m);
            std::vector<BitVec> image = mem.init;
            uint64_t idx = num(tok[2]);
            if (idx >= mem.depth)
                err("meminit index out of range");
            if (image.size() <= idx)
                image.resize(idx + 1, BitVec(mem.width, uint64_t{0}));
            image[idx] = BitVec::fromHex(mem.width, tok[3]);
            nl.initMemory(m, std::move(image));
        } else if (kw == "regnext") {
            if (tok.size() != 3)
                err("regnext <reg> %value");
            RegId r = nl.findRegister(tok[1]);
            if (r == nl.numRegisters())
                err("unknown register " + tok[1]);
            nl.setRegisterNext(r, ref(nl, tok[2]));
        } else if (kw == "memwrite") {
            if (tok.size() != 5)
                err("memwrite <mem> %addr %data %en");
            MemId m = nl.findMemory(tok[1]);
            if (m == nl.numMemories())
                err("unknown memory " + tok[1]);
            nl.writeMemory(m, ref(nl, tok[2]), ref(nl, tok[3]),
                           ref(nl, tok[4]));
        } else if (kw == "output") {
            if (tok.size() != 3)
                err("output <name> %value");
            nl.addOutput(tok[1], ref(nl, tok[2]));
        } else if (kw[0] == '%') {
            if (tok.size() < 3 || tok[1] != "=")
                err("node line must be '%label = op ...'");
            std::string label = kw.substr(1);
            if (labels.count(label))
                err("label %" + label + " redefined");
            const std::string &op = tok[2];
            NodeId id;
            if (op == "const") {
                if (tok.size() != 5)
                    err("const <width> <value-hex>");
                uint16_t w = static_cast<uint16_t>(num(tok[3]));
                id = nl.addConst(BitVec::fromHex(w, tok[4]));
            } else if (op == "input") {
                if (tok.size() != 5)
                    err("input <name> <width>");
                id = nl.addInput(tok[3],
                                 static_cast<uint16_t>(num(tok[4])));
            } else if (op == "regread") {
                if (tok.size() != 4)
                    err("regread <reg>");
                RegId r = nl.findRegister(tok[3]);
                if (r == nl.numRegisters())
                    err("unknown register " + tok[3]);
                id = nl.readRegister(r);
            } else if (op == "memread") {
                if (tok.size() != 5)
                    err("memread <mem> %addr");
                MemId m = nl.findMemory(tok[3]);
                if (m == nl.numMemories())
                    err("unknown memory " + tok[3]);
                id = nl.readMemory(m, ref(nl, tok[4]));
            } else if (op == "mux") {
                if (tok.size() != 6)
                    err("mux %sel %then %else");
                id = nl.addMux(ref(nl, tok[3]), ref(nl, tok[4]),
                               ref(nl, tok[5]));
            } else if (op == "concat") {
                if (tok.size() != 5)
                    err("concat %hi %lo");
                id = nl.addConcat(ref(nl, tok[3]), ref(nl, tok[4]));
            } else if (op == "slice") {
                if (tok.size() != 6)
                    err("slice %a <lsb> <width>");
                id = nl.addSlice(ref(nl, tok[3]),
                                 static_cast<uint32_t>(num(tok[4])),
                                 static_cast<uint16_t>(num(tok[5])));
            } else if (op == "zext" || op == "sext") {
                if (tok.size() != 5)
                    err(op + " %a <width>");
                id = nl.addExtend(op == "zext" ? Op::ZExt : Op::SExt,
                                  ref(nl, tok[3]),
                                  static_cast<uint16_t>(num(tok[4])));
            } else {
                auto it = opTable().find(op);
                if (it == opTable().end())
                    err("unknown op '" + op + "'");
                int arity = opArity(it->second);
                if (static_cast<int>(tok.size()) != 3 + arity)
                    err(op + " takes " + std::to_string(arity) +
                        " operand(s)");
                if (arity == 1)
                    id = nl.addUnary(it->second, ref(nl, tok[3]));
                else
                    id = nl.addBinary(it->second, ref(nl, tok[3]),
                                      ref(nl, tok[4]));
            }
            labels[label] = id;
        } else {
            err("unknown keyword '" + kw + "'");
        }
    }
    if (!got_header)
        fatal("pnl: empty input (missing 'pnl 1' header)");
    nl.check();
    return nl;
}

} // namespace

Netlist
parsePnl(const std::string &text)
{
    Parser p(text);
    return p.parse();
}

Netlist
parsePnlFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return parsePnl(ss.str());
}

std::string
writePnl(const Netlist &nl)
{
    std::ostringstream out;
    out << "pnl 1\n";
    out << "design " << nl.name() << "\n";
    for (RegId r = 0; r < nl.numRegisters(); ++r) {
        const Register &reg = nl.reg(r);
        out << "reg " << reg.name << " " << reg.width << " "
            << reg.init.toHex() << "\n";
    }
    for (MemId m = 0; m < nl.numMemories(); ++m) {
        const Memory &mem = nl.mem(m);
        out << "mem " << mem.name << " " << mem.width << " " << mem.depth
            << "\n";
        for (size_t i = 0; i < mem.init.size(); ++i)
            if (!mem.init[i].isZero())
                out << "meminit " << mem.name << " " << i << " "
                    << mem.init[i].toHex() << "\n";
    }
    // Emit nodes in ascending id order: construction order is
    // topological (operands precede users, enforced by check()), and
    // it also preserves memory write-port order, which is part of the
    // semantics.
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
        const Node &n = nl.node(id);
        auto lbl = [](NodeId x) { return "%" + std::to_string(x); };
        switch (n.op) {
          case Op::Const:
            out << lbl(id) << " = const " << n.width << " "
                << nl.constValue(n.aux).toHex() << "\n";
            break;
          case Op::Input:
            out << lbl(id) << " = input " << nl.input(n.aux).name << " "
                << n.width << "\n";
            break;
          case Op::RegRead:
            out << lbl(id) << " = regread " << nl.reg(n.aux).name << "\n";
            break;
          case Op::MemRead:
            out << lbl(id) << " = memread " << nl.mem(n.aux).name << " "
                << lbl(n.operands[0]) << "\n";
            break;
          case Op::Mux:
            out << lbl(id) << " = mux " << lbl(n.operands[0]) << " "
                << lbl(n.operands[1]) << " " << lbl(n.operands[2]) << "\n";
            break;
          case Op::Concat:
            out << lbl(id) << " = concat " << lbl(n.operands[0]) << " "
                << lbl(n.operands[1]) << "\n";
            break;
          case Op::Slice:
            out << lbl(id) << " = slice " << lbl(n.operands[0]) << " "
                << n.aux << " " << n.width << "\n";
            break;
          case Op::ZExt:
          case Op::SExt:
            out << lbl(id) << " = "
                << (n.op == Op::ZExt ? "zext" : "sext") << " "
                << lbl(n.operands[0]) << " " << n.width << "\n";
            break;
          case Op::RegNext:
            out << "regnext " << nl.reg(n.aux).name << " "
                << lbl(n.operands[0]) << "\n";
            break;
          case Op::MemWrite:
            out << "memwrite " << nl.mem(n.aux).name << " "
                << lbl(n.operands[0]) << " " << lbl(n.operands[1]) << " "
                << lbl(n.operands[2]) << "\n";
            break;
          case Op::Output:
            out << "output " << nl.output(n.aux).name << " "
                << lbl(n.operands[0]) << "\n";
            break;
          default: {
            out << lbl(id) << " = " << opName(n.op);
            for (int i = 0; i < opArity(n.op); ++i)
                out << " " << lbl(n.operands[i]);
            out << "\n";
            break;
          }
        }
    }
    return out.str();
}

void
writePnlFile(const Netlist &nl, const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot write %s", path.c_str());
    f << writePnl(nl);
}

} // namespace parendi::frontend
