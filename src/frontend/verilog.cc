#include "frontend/verilog.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "rtl/dsl.hh"
#include "util/logging.hh"

namespace parendi::frontend {

using namespace rtl;

namespace {

// ---- Lexer ---------------------------------------------------------------

enum class Tok : uint8_t { Id, Number, Punct, End };

struct Token
{
    Tok kind = Tok::End;
    std::string text;       ///< identifier / punctuation spelling
    uint64_t value = 0;     ///< numeric value
    uint16_t width = 32;    ///< literal width
    int line = 0;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &text)
    {
        tokenize(text);
    }

    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos + ahead;
        return i < toks.size() ? toks[i] : toks.back();
    }

    Token
    next()
    {
        Token t = peek();
        if (pos < toks.size())
            ++pos;
        return t;
    }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("verilog line %d: %s (near '%s')", peek().line,
              msg.c_str(), peek().text.c_str());
    }

    bool
    eat(const std::string &punct_or_kw)
    {
        const Token &t = peek();
        if ((t.kind == Tok::Punct || t.kind == Tok::Id) &&
            t.text == punct_or_kw) {
            next();
            return true;
        }
        return false;
    }

    void
    expect(const std::string &s)
    {
        if (!eat(s))
            err("expected '" + s + "'");
    }

    std::string
    expectId()
    {
        if (peek().kind != Tok::Id)
            err("expected identifier");
        return next().text;
    }

  private:
    void
    tokenize(const std::string &text)
    {
        int line = 1;
        size_t i = 0;
        auto push = [&](Tok k, std::string s, uint64_t v = 0,
                        uint16_t w = 32) {
            toks.push_back({k, std::move(s), v, w, line});
        };
        while (i < text.size()) {
            char c = text[i];
            if (c == '\n') {
                ++line;
                ++i;
                continue;
            }
            if (isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (c == '/' && i + 1 < text.size() &&
                text[i + 1] == '/') {
                while (i < text.size() && text[i] != '\n')
                    ++i;
                continue;
            }
            if (c == '/' && i + 1 < text.size() &&
                text[i + 1] == '*') {
                i += 2;
                while (i + 1 < text.size() &&
                       !(text[i] == '*' && text[i + 1] == '/')) {
                    if (text[i] == '\n')
                        ++line;
                    ++i;
                }
                i += 2;
                continue;
            }
            if (isalpha(static_cast<unsigned char>(c)) || c == '_' ||
                c == '$') {
                size_t start = i;
                while (i < text.size() &&
                       (isalnum(static_cast<unsigned char>(text[i])) ||
                        text[i] == '_' || text[i] == '$'))
                    ++i;
                push(Tok::Id, text.substr(start, i - start));
                continue;
            }
            if (isdigit(static_cast<unsigned char>(c)) || c == '\'') {
                // [width] ' base digits   |   plain decimal
                uint64_t width = 32;
                bool sized = false;
                if (isdigit(static_cast<unsigned char>(c))) {
                    size_t start = i;
                    while (i < text.size() &&
                           (isdigit(static_cast<unsigned char>(
                                text[i])) ||
                            text[i] == '_'))
                        ++i;
                    std::string digits =
                        text.substr(start, i - start);
                    digits.erase(
                        std::remove(digits.begin(), digits.end(), '_'),
                        digits.end());
                    uint64_t v = std::stoull(digits);
                    if (i < text.size() && text[i] == '\'') {
                        width = v;
                        sized = true;
                    } else {
                        push(Tok::Number, digits, v, 32);
                        continue;
                    }
                }
                if (i >= text.size() || text[i] != '\'')
                    fatal("verilog line %d: malformed literal", line);
                ++i; // consume '
                if (i >= text.size())
                    fatal("verilog line %d: malformed literal", line);
                char base = static_cast<char>(
                    tolower(static_cast<unsigned char>(text[i++])));
                size_t start = i;
                while (i < text.size() &&
                       (isalnum(static_cast<unsigned char>(text[i])) ||
                        text[i] == '_'))
                    ++i;
                std::string digits = text.substr(start, i - start);
                digits.erase(
                    std::remove(digits.begin(), digits.end(), '_'),
                    digits.end());
                if (digits.empty())
                    fatal("verilog line %d: empty literal", line);
                int radix = base == 'h' ? 16 : base == 'b' ? 2
                    : base == 'd' ? 10 : base == 'o' ? 8 : 0;
                if (!radix)
                    fatal("verilog line %d: bad literal base '%c'",
                          line, base);
                uint64_t v = std::stoull(digits, nullptr, radix);
                if (!sized)
                    width = 32;
                if (width == 0 || width > 64)
                    fatal("verilog line %d: literal width %llu "
                          "unsupported (1-64)", line,
                          static_cast<unsigned long long>(width));
                push(Tok::Number, digits, v,
                     static_cast<uint16_t>(width));
                continue;
            }
            // Punctuation (longest first).
            static const char *multi[] = {">>>", "<<", ">>", "<=",
                                          ">=", "==", "!=", "&&",
                                          "||"};
            bool matched = false;
            for (const char *m : multi) {
                size_t len = strlen(m);
                if (text.compare(i, len, m) == 0) {
                    push(Tok::Punct, m);
                    i += len;
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
            push(Tok::Punct, std::string(1, c));
            ++i;
        }
        push(Tok::End, "<eof>");
    }

    std::vector<Token> toks;
    size_t pos = 0;
};

// ---- AST -------------------------------------------------------------------

struct Expr;
using ExprP = std::unique_ptr<Expr>;

struct Expr
{
    enum Kind : uint8_t {
        Num,
        Ref,
        Index,      ///< name[expr]: bit select or memory read
        Range,      ///< name[msb:lsb] (constants)
        Unary,      ///< op in text
        Binary,
        Ternary,
        Concat,
        Repl,
    } kind;
    int line = 0;
    std::string op;              ///< operator spelling / ref name
    uint64_t value = 0;          ///< Num value
    uint16_t width = 32;         ///< Num width
    uint32_t msb = 0, lsb = 0;   ///< Range bounds
    std::vector<ExprP> args;
};

struct Stmt;
using StmtP = std::unique_ptr<Stmt>;

struct Stmt
{
    enum Kind : uint8_t { NonBlocking, If, Case, Block } kind;
    int line = 0;
    // NonBlocking
    std::string target;
    ExprP index;        ///< non-null for memory writes
    ExprP rhs;
    // If
    ExprP cond;
    StmtP thenS, elseS;
    // Case
    ExprP subject;
    struct CaseItem
    {
        std::vector<std::pair<uint64_t, uint16_t>> labels;
        StmtP body;
    };
    std::vector<CaseItem> items;
    StmtP defaultS;
    // Block
    std::vector<StmtP> stmts;
};

struct Decl
{
    enum Kind : uint8_t { Input, Output, OutputReg, Wire, Reg, Mem }
        kind;
    std::string name;
    uint16_t width = 1;
    uint32_t depth = 0;     ///< memories only
    uint64_t init = 0;      ///< reg initializer
    bool hasInit = false;
    ExprP wireExpr;         ///< wire w = expr;
    int line = 0;
};

struct AlwaysBlock
{
    std::string clock;
    StmtP body;
};

/** One `child inst(.port(expr), ...);` instantiation. */
struct Instance
{
    std::string moduleName;
    std::string instName;
    std::vector<std::pair<std::string, ExprP>> bindings;
    int line = 0;
};

struct Module
{
    std::string name;
    std::vector<Decl> decls;
    std::vector<std::pair<std::string, ExprP>> assigns;
    std::vector<AlwaysBlock> always;
    std::vector<Instance> instances;
};

// ---- AST cloning (used by the hierarchy flattener) -------------------------

ExprP
cloneExpr(const Expr &e)
{
    auto c = std::make_unique<Expr>();
    c->kind = e.kind;
    c->line = e.line;
    c->op = e.op;
    c->value = e.value;
    c->width = e.width;
    c->msb = e.msb;
    c->lsb = e.lsb;
    for (const ExprP &a : e.args)
        c->args.push_back(cloneExpr(*a));
    return c;
}

StmtP
cloneStmt(const Stmt &s)
{
    auto c = std::make_unique<Stmt>();
    c->kind = s.kind;
    c->line = s.line;
    c->target = s.target;
    if (s.index)
        c->index = cloneExpr(*s.index);
    if (s.rhs)
        c->rhs = cloneExpr(*s.rhs);
    if (s.cond)
        c->cond = cloneExpr(*s.cond);
    if (s.thenS)
        c->thenS = cloneStmt(*s.thenS);
    if (s.elseS)
        c->elseS = cloneStmt(*s.elseS);
    if (s.subject)
        c->subject = cloneExpr(*s.subject);
    for (const Stmt::CaseItem &item : s.items) {
        Stmt::CaseItem ci;
        ci.labels = item.labels;
        ci.body = cloneStmt(*item.body);
        c->items.push_back(std::move(ci));
    }
    if (s.defaultS)
        c->defaultS = cloneStmt(*s.defaultS);
    for (const StmtP &sub : s.stmts)
        c->stmts.push_back(cloneStmt(*sub));
    return c;
}

// ---- Parser ----------------------------------------------------------------

class Parser
{
  public:
    explicit Parser(const std::string &text) : lx(text) {}

    /** Parse every module in the file (the last one is the top). */
    std::vector<Module>
    parseFile()
    {
        std::vector<Module> mods;
        while (lx.peek().kind != Tok::End)
            mods.push_back(parseModule());
        if (mods.empty())
            lx.err("no module found");
        return mods;
    }

  private:
    Module
    parseModule()
    {
        Module m;
        lx.expect("module");
        m.name = lx.expectId();
        lx.expect("(");
        if (!lx.eat(")")) {
            do {
                parsePortDecl(m);
            } while (lx.eat(","));
            lx.expect(")");
        }
        lx.expect(";");
        while (!lx.eat("endmodule")) {
            if (lx.peek().kind == Tok::End)
                lx.err("missing endmodule");
            parseItem(m);
        }
        return m;
    }

  private:
    uint16_t
    parseRangeOpt()
    {
        if (!lx.eat("["))
            return 1;
        if (lx.peek().kind != Tok::Number)
            lx.err("expected constant msb");
        uint64_t msb = lx.next().value;
        lx.expect(":");
        if (lx.peek().kind != Tok::Number)
            lx.err("expected constant lsb");
        uint64_t lsb = lx.next().value;
        lx.expect("]");
        if (lsb != 0)
            lx.err("only [msb:0] ranges are supported");
        if (msb >= kMaxWidth)
            lx.err("range too wide");
        return static_cast<uint16_t>(msb + 1);
    }

    void
    parsePortDecl(Module &m)
    {
        Decl d;
        d.line = lx.peek().line;
        if (lx.eat("input")) {
            d.kind = Decl::Input;
        } else if (lx.eat("output")) {
            d.kind = lx.eat("reg") ? Decl::OutputReg : Decl::Output;
        } else {
            lx.err("expected input/output in port list");
        }
        d.width = parseRangeOpt();
        d.name = lx.expectId();
        m.decls.push_back(std::move(d));
    }

    void
    parseItem(Module &m)
    {
        int line = lx.peek().line;
        if (lx.eat("wire")) {
            Decl d;
            d.kind = Decl::Wire;
            d.line = line;
            d.width = parseRangeOpt();
            d.name = lx.expectId();
            if (lx.eat("="))
                d.wireExpr = parseExpr();
            lx.expect(";");
            m.decls.push_back(std::move(d));
        } else if (lx.eat("reg")) {
            Decl d;
            d.line = line;
            d.width = parseRangeOpt();
            d.name = lx.expectId();
            if (lx.eat("[")) {
                // Memory: reg [w-1:0] name [0:depth-1];
                d.kind = Decl::Mem;
                if (lx.peek().kind != Tok::Number)
                    lx.err("expected constant memory bound");
                uint64_t lo = lx.next().value;
                lx.expect(":");
                if (lx.peek().kind != Tok::Number)
                    lx.err("expected constant memory bound");
                uint64_t hi = lx.next().value;
                lx.expect("]");
                if (lo != 0)
                    lx.err("memory ranges must start at 0");
                d.depth = static_cast<uint32_t>(hi + 1);
            } else {
                d.kind = Decl::Reg;
                if (lx.eat("=")) {
                    if (lx.peek().kind != Tok::Number)
                        lx.err("reg initializer must be a literal");
                    d.init = lx.next().value;
                    d.hasInit = true;
                }
            }
            lx.expect(";");
            m.decls.push_back(std::move(d));
        } else if (lx.eat("assign")) {
            std::string name = lx.expectId();
            lx.expect("=");
            ExprP e = parseExpr();
            lx.expect(";");
            m.assigns.emplace_back(std::move(name), std::move(e));
        } else if (lx.eat("always")) {
            lx.expect("@");
            lx.expect("(");
            lx.expect("posedge");
            AlwaysBlock blk;
            blk.clock = lx.expectId();
            lx.expect(")");
            blk.body = parseStmt();
            m.always.push_back(std::move(blk));
        } else if (lx.peek().kind == Tok::Id &&
                   lx.peek(1).kind == Tok::Id) {
            // Instantiation: <module> <inst> ( .port(expr), ... ) ;
            Instance inst;
            inst.line = line;
            inst.moduleName = lx.expectId();
            inst.instName = lx.expectId();
            lx.expect("(");
            if (!lx.eat(")")) {
                do {
                    lx.expect(".");
                    std::string port = lx.expectId();
                    lx.expect("(");
                    ExprP e = lx.eat(")") ? nullptr : parseExpr();
                    if (e)
                        lx.expect(")");
                    inst.bindings.emplace_back(std::move(port),
                                               std::move(e));
                } while (lx.eat(","));
                lx.expect(")");
            }
            lx.expect(";");
            m.instances.push_back(std::move(inst));
        } else {
            lx.err("unexpected module item");
        }
    }

    StmtP
    parseStmt()
    {
        auto s = std::make_unique<Stmt>();
        s->line = lx.peek().line;
        if (lx.eat("begin")) {
            s->kind = Stmt::Block;
            while (!lx.eat("end"))
                s->stmts.push_back(parseStmt());
            return s;
        }
        if (lx.eat("if")) {
            s->kind = Stmt::If;
            lx.expect("(");
            s->cond = parseExpr();
            lx.expect(")");
            s->thenS = parseStmt();
            if (lx.eat("else"))
                s->elseS = parseStmt();
            return s;
        }
        if (lx.eat("case")) {
            s->kind = Stmt::Case;
            lx.expect("(");
            s->subject = parseExpr();
            lx.expect(")");
            while (!lx.eat("endcase")) {
                if (lx.eat("default")) {
                    lx.eat(":");
                    s->defaultS = parseStmt();
                    continue;
                }
                Stmt::CaseItem item;
                do {
                    if (lx.peek().kind != Tok::Number)
                        lx.err("case labels must be literals");
                    Token t = lx.next();
                    item.labels.emplace_back(t.value, t.width);
                } while (lx.eat(","));
                lx.expect(":");
                item.body = parseStmt();
                s->items.push_back(std::move(item));
            }
            return s;
        }
        // Non-blocking assignment: name [ [expr] ] <= expr ;
        s->kind = Stmt::NonBlocking;
        s->target = lx.expectId();
        if (lx.eat("[")) {
            s->index = parseExpr();
            lx.expect("]");
        }
        lx.expect("<=");
        s->rhs = parseExpr();
        lx.expect(";");
        return s;
    }

    // Precedence-climbing expression parser.
    ExprP
    parseExpr()
    {
        ExprP cond = parseBin(0);
        if (lx.eat("?")) {
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Ternary;
            e->line = lx.peek().line;
            ExprP t = parseExpr();
            lx.expect(":");
            ExprP f = parseExpr();
            e->args.push_back(std::move(cond));
            e->args.push_back(std::move(t));
            e->args.push_back(std::move(f));
            return e;
        }
        return cond;
    }

    int
    precedence(const std::string &op)
    {
        if (op == "||") return 1;
        if (op == "&&") return 2;
        if (op == "|") return 3;
        if (op == "^") return 4;
        if (op == "&") return 5;
        if (op == "==" || op == "!=") return 6;
        if (op == "<" || op == "<=" || op == ">" || op == ">=")
            return 7;
        if (op == "<<" || op == ">>" || op == ">>>") return 8;
        if (op == "+" || op == "-") return 9;
        if (op == "*") return 10;
        return -1;
    }

    ExprP
    parseBin(int min_prec)
    {
        ExprP lhs = parseUnary();
        for (;;) {
            const Token &t = lx.peek();
            if (t.kind != Tok::Punct)
                break;
            int prec = precedence(t.text);
            if (prec < 0 || prec < min_prec)
                break;
            std::string op = lx.next().text;
            ExprP rhs = parseBin(prec + 1);
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Binary;
            e->op = op;
            e->line = t.line;
            e->args.push_back(std::move(lhs));
            e->args.push_back(std::move(rhs));
            lhs = std::move(e);
        }
        return lhs;
    }

    ExprP
    parseUnary()
    {
        const Token &t = lx.peek();
        if (t.kind == Tok::Punct &&
            (t.text == "~" || t.text == "!" || t.text == "-" ||
             t.text == "&" || t.text == "|" || t.text == "^")) {
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Unary;
            e->op = lx.next().text;
            e->line = t.line;
            e->args.push_back(parseUnary());
            return e;
        }
        return parsePrimary();
    }

    ExprP
    parsePrimary()
    {
        const Token &t = lx.peek();
        auto e = std::make_unique<Expr>();
        e->line = t.line;
        if (t.kind == Tok::Number) {
            Token n = lx.next();
            e->kind = Expr::Num;
            e->value = n.value;
            e->width = n.width;
            return e;
        }
        if (lx.eat("(")) {
            ExprP inner = parseExpr();
            lx.expect(")");
            return inner;
        }
        if (lx.eat("{")) {
            // Concat or replication.
            if (lx.peek().kind == Tok::Number &&
                lx.peek(1).kind == Tok::Punct &&
                lx.peek(1).text == "{") {
                e->kind = Expr::Repl;
                e->value = lx.next().value; // count
                lx.expect("{");
                e->args.push_back(parseExpr());
                lx.expect("}");
                lx.expect("}");
                return e;
            }
            e->kind = Expr::Concat;
            do {
                e->args.push_back(parseExpr());
            } while (lx.eat(","));
            lx.expect("}");
            return e;
        }
        if (t.kind == Tok::Id) {
            std::string name = lx.next().text;
            if (lx.eat("[")) {
                // a[c] or a[m:l] or mem[expr]
                ExprP first = parseExpr();
                if (lx.eat(":")) {
                    if (first->kind != Expr::Num ||
                        lx.peek().kind != Tok::Number)
                        lx.err("part selects must be constant");
                    uint64_t lsb = lx.next().value;
                    lx.expect("]");
                    e->kind = Expr::Range;
                    e->op = name;
                    e->msb = static_cast<uint32_t>(first->value);
                    e->lsb = static_cast<uint32_t>(lsb);
                    return e;
                }
                lx.expect("]");
                e->kind = Expr::Index;
                e->op = name;
                e->args.push_back(std::move(first));
                return e;
            }
            e->kind = Expr::Ref;
            e->op = name;
            return e;
        }
        lx.err("expected expression");
    }

    Lexer lx;
};

// ---- Hierarchy flattening ----------------------------------------------------

/**
 * Inlines every instantiation into the top module (the last module in
 * the file), prefixing child identifiers with "<inst>__". Input port
 * references are substituted with the bound parent expressions
 * (bindings must be plain identifiers when the child bit-selects or
 * part-selects the port); output ports must be bound to undriven
 * parent wires. The instantiation graph must be acyclic.
 */
class Flattener
{
  public:
    explicit Flattener(std::vector<Module> mods)
    {
        for (Module &m : mods) {
            if (byName.count(m.name))
                fatal("verilog: module %s defined twice",
                      m.name.c_str());
            order.push_back(m.name);
            byName.emplace(m.name, std::move(m));
        }
    }

    Module
    run()
    {
        return flatten(order.back());
    }

  private:
    [[noreturn]] void
    err(int line, const std::string &msg)
    {
        fatal("verilog line %d: %s", line, msg.c_str());
    }

    /** Rename/substitution context for one inlining. */
    struct Renamer
    {
        std::string prefix;
        std::map<std::string, const Expr *> subst; ///< input bindings
        std::map<std::string, std::string> rename; ///< other idents
    };

    ExprP
    rewriteExpr(const Expr &e, const Renamer &rn)
    {
        if (e.kind == Expr::Ref) {
            auto si = rn.subst.find(e.op);
            if (si != rn.subst.end())
                return cloneExpr(*si->second);
        }
        ExprP c = cloneExpr(e);
        rewriteInPlace(*c, rn);
        return c;
    }

    void
    rewriteInPlace(Expr &e, const Renamer &rn)
    {
        if (e.kind == Expr::Ref || e.kind == Expr::Index ||
            e.kind == Expr::Range) {
            auto si = rn.subst.find(e.op);
            if (si != rn.subst.end()) {
                if (e.kind == Expr::Ref) {
                    // Replace the node wholesale.
                    ExprP repl = cloneExpr(*si->second);
                    std::vector<ExprP> args = std::move(e.args);
                    e = std::move(*repl);
                    // (Ref has no args; the moved-from vector is
                    // dropped.)
                    (void)args;
                } else {
                    // Selecting into a port: the binding must be a
                    // plain identifier we can select from instead.
                    if (si->second->kind != Expr::Ref)
                        err(e.line,
                            "port " + e.op + " is indexed inside the "
                            "child; bind it to a plain signal");
                    e.op = si->second->op;
                }
            } else {
                auto ri = rn.rename.find(e.op);
                if (ri != rn.rename.end())
                    e.op = ri->second;
            }
        }
        for (ExprP &a : e.args)
            if (a)
                rewriteInPlace(*a, rn);
    }

    void
    rewriteStmt(Stmt &s, const Renamer &rn)
    {
        if (!s.target.empty()) {
            if (rn.subst.count(s.target))
                err(s.line, "cannot assign to input port " + s.target);
            auto ri = rn.rename.find(s.target);
            if (ri != rn.rename.end())
                s.target = ri->second;
        }
        for (ExprP *e : {&s.index, &s.rhs, &s.cond, &s.subject})
            if (*e)
                rewriteInPlace(**e, rn);
        for (StmtP *sub : {&s.thenS, &s.elseS, &s.defaultS})
            if (*sub)
                rewriteStmt(**sub, rn);
        for (Stmt::CaseItem &item : s.items)
            rewriteStmt(*item.body, rn);
        for (StmtP &sub : s.stmts)
            rewriteStmt(*sub, rn);
    }

    Module
    flatten(const std::string &name)
    {
        auto done = flat.find(name);
        if (done != flat.end()) {
            // Deep-copy the memoized flat module.
            return copyModule(done->second);
        }
        auto it = byName.find(name);
        if (it == byName.end())
            fatal("verilog: unknown module %s", name.c_str());
        if (!inProgress.insert(name).second)
            fatal("verilog: instantiation cycle through %s",
                  name.c_str());

        Module out = copyModule(it->second);
        std::vector<Instance> insts = std::move(out.instances);
        out.instances.clear();
        for (Instance &inst : insts)
            inline_(out, inst);
        inProgress.erase(name);
        flat.emplace(name, copyModule(out));
        return out;
    }

    Module
    copyModule(const Module &m)
    {
        Module c;
        c.name = m.name;
        for (const Decl &d : m.decls) {
            Decl nd;
            nd.kind = d.kind;
            nd.name = d.name;
            nd.width = d.width;
            nd.depth = d.depth;
            nd.init = d.init;
            nd.hasInit = d.hasInit;
            nd.line = d.line;
            if (d.wireExpr)
                nd.wireExpr = cloneExpr(*d.wireExpr);
            c.decls.push_back(std::move(nd));
        }
        for (const auto &[n, e] : m.assigns)
            c.assigns.emplace_back(n, cloneExpr(*e));
        for (const AlwaysBlock &b : m.always) {
            AlwaysBlock nb;
            nb.clock = b.clock;
            nb.body = cloneStmt(*b.body);
            c.always.push_back(std::move(nb));
        }
        for (const Instance &i : m.instances) {
            Instance ni;
            ni.moduleName = i.moduleName;
            ni.instName = i.instName;
            ni.line = i.line;
            for (const auto &[p, e] : i.bindings)
                ni.bindings.emplace_back(p, e ? cloneExpr(*e)
                                              : nullptr);
            c.instances.push_back(std::move(ni));
        }
        return c;
    }

    void
    inline_(Module &parent, Instance &inst)
    {
        Module child = flatten(inst.moduleName);
        Renamer rn;
        rn.prefix = inst.instName + "__";

        // Index the bindings.
        std::map<std::string, const Expr *> bound;
        for (auto &[port, e] : inst.bindings) {
            if (bound.count(port))
                err(inst.line, "port " + port + " bound twice");
            bound[port] = e.get();
        }

        // Classify child declarations.
        std::vector<std::pair<std::string, std::string>> out_binds;
        for (Decl &d : child.decls) {
            switch (d.kind) {
              case Decl::Input: {
                auto b = bound.find(d.name);
                if (b == bound.end() || !b->second)
                    err(inst.line, "input port " + d.name +
                        " of " + inst.moduleName + " is unbound");
                rn.subst[d.name] = b->second;
                bound.erase(b);
                break;
              }
              case Decl::Output:
              case Decl::OutputReg: {
                std::string inner = rn.prefix + d.name;
                rn.rename[d.name] = inner;
                Decl nd;
                nd.kind = d.kind == Decl::Output ? Decl::Wire
                                                 : Decl::Reg;
                nd.name = inner;
                nd.width = d.width;
                nd.init = d.init;
                nd.hasInit = d.hasInit;
                nd.line = d.line;
                parent.decls.push_back(std::move(nd));
                auto b = bound.find(d.name);
                if (b != bound.end()) {
                    if (b->second) {
                        if (b->second->kind != Expr::Ref)
                            err(inst.line, "output port " + d.name +
                                " must be bound to a plain wire");
                        out_binds.emplace_back(b->second->op, inner);
                    }
                    bound.erase(b);
                }
                break;
              }
              default: {
                std::string inner = rn.prefix + d.name;
                rn.rename[d.name] = inner;
                Decl nd;
                nd.kind = d.kind;
                nd.name = inner;
                nd.width = d.width;
                nd.depth = d.depth;
                nd.init = d.init;
                nd.hasInit = d.hasInit;
                nd.line = d.line;
                // The wire expression is rewritten below, once the
                // rename map is complete (it may reference child
                // declarations that appear later in the module).
                parent.decls.push_back(std::move(nd));
                pending_wire_exprs.emplace_back(
                    parent.decls.size() - 1, d.wireExpr.get());
                break;
              }
            }
        }
        if (!bound.empty())
            err(inst.line, "no port named " + bound.begin()->first +
                " on module " + inst.moduleName);

        // Wire initializer expressions (complete rename map now).
        for (auto &[idx, expr] : pending_wire_exprs)
            if (expr)
                parent.decls[idx].wireExpr = rewriteExpr(*expr, rn);
        pending_wire_exprs.clear();

        // Assigns.
        for (auto &[target, e] : child.assigns) {
            std::string t = target;
            auto ri = rn.rename.find(t);
            if (ri != rn.rename.end())
                t = ri->second;
            else if (rn.subst.count(t))
                err(inst.line, "child assigns to input port " + t);
            parent.assigns.emplace_back(t, rewriteExpr(*e, rn));
        }
        // Output port -> parent wire connections.
        for (auto &[pwire, inner] : out_binds) {
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Ref;
            e->op = inner;
            e->line = inst.line;
            parent.assigns.emplace_back(pwire, std::move(e));
        }
        // Always blocks: the clock must be an input bound to a plain
        // parent signal.
        for (AlwaysBlock &b : child.always) {
            auto si = rn.subst.find(b.clock);
            if (si == rn.subst.end() || si->second->kind != Expr::Ref)
                err(inst.line, "clock port " + b.clock +
                    " must be bound to a plain signal");
            AlwaysBlock nb;
            nb.clock = si->second->op;
            nb.body = cloneStmt(*b.body);
            rewriteStmt(*nb.body, rn);
            parent.always.push_back(std::move(nb));
        }
    }

    std::map<std::string, Module> byName;
    std::vector<std::string> order;
    std::map<std::string, Module> flat;
    std::set<std::string> inProgress;
    std::vector<std::pair<size_t, const Expr *>> pending_wire_exprs;
};

// ---- Elaboration -------------------------------------------------------------

struct Symbol
{
    Decl::Kind kind;
    uint16_t width;
    RegId reg = 0;
    MemId mem = 0;
    NodeId inputNode = kNoNode;
    const Expr *wireExpr = nullptr;       ///< for wires
    enum class State : uint8_t { Unresolved, InProgress, Done } state =
        State::Unresolved;
    Wire value;                           ///< resolved wire value
};

class Elaborator
{
  public:
    explicit Elaborator(Module mod)
        : m(std::move(mod)), d(m.name)
    {}

    Netlist
    run()
    {
        findClock();
        declare();
        resolveAllWires();
        elaborateAlways();
        driveUndrivenRegs();
        emitOutputs();
        return d.finish();
    }

  private:
    [[noreturn]] void
    err(int line, const std::string &msg)
    {
        fatal("verilog line %d: %s", line, msg.c_str());
    }

    void
    findClock()
    {
        for (const AlwaysBlock &b : m.always) {
            if (clock.empty())
                clock = b.clock;
            else if (clock != b.clock)
                fatal("multiple clock domains (%s and %s); only one "
                      "top-level clock is supported (paper §5.3)",
                      clock.c_str(), b.clock.c_str());
        }
    }

    void
    declare()
    {
        for (Decl &decl : m.decls) {
            if (syms.count(decl.name))
                err(decl.line, "duplicate declaration of " +
                    decl.name);
            Symbol s;
            s.kind = decl.kind;
            s.width = decl.width;
            switch (decl.kind) {
              case Decl::Input:
                if (decl.name == clock)
                    break; // the clock is implicit
                s.inputNode = d.netlist().addInput(decl.name,
                                                   decl.width);
                s.value = Wire(&d.netlist(), s.inputNode);
                s.state = Symbol::State::Done;
                break;
              case Decl::OutputReg:
              case Decl::Reg:
                s.reg = d.reg(decl.name, decl.width, decl.init);
                s.value = d.read(s.reg);
                s.state = Symbol::State::Done;
                break;
              case Decl::Mem:
                s.mem = d.memory(decl.name, decl.width, decl.depth);
                s.state = Symbol::State::Done;
                break;
              case Decl::Wire:
                s.wireExpr = decl.wireExpr.get();
                break;
              case Decl::Output:
                break; // resolved from the assign list
            }
            syms[decl.name] = s;
        }
        // Attach continuous assignments to wires/outputs.
        for (auto &[name, expr] : m.assigns) {
            auto it = syms.find(name);
            if (it == syms.end())
                fatal("assign to undeclared signal %s", name.c_str());
            Symbol &s = it->second;
            if (s.kind != Decl::Wire && s.kind != Decl::Output)
                fatal("assign target %s must be a wire or output",
                      name.c_str());
            if (s.wireExpr)
                fatal("signal %s driven twice", name.c_str());
            s.wireExpr = expr.get();
        }
    }

    Symbol &
    lookup(const std::string &name, int line)
    {
        if (name == clock)
            err(line, "the clock may only appear in @(posedge ...)");
        auto it = syms.find(name);
        if (it == syms.end())
            err(line, "undeclared identifier " + name);
        return it->second;
    }

    /** Resolve a wire/output value (demand-driven; detects loops). */
    Wire
    resolve(const std::string &name, int line)
    {
        Symbol &s = lookup(name, line);
        if (s.state == Symbol::State::Done)
            return s.value;
        if (s.state == Symbol::State::InProgress)
            err(line, "combinational loop through " + name);
        if (!s.wireExpr)
            err(line, name + " is never driven");
        s.state = Symbol::State::InProgress;
        Wire v = elabExpr(*s.wireExpr).resize(s.width);
        s.value = v;
        s.state = Symbol::State::Done;
        return v;
    }

    void
    resolveAllWires()
    {
        for (Decl &decl : m.decls)
            if (decl.kind == Decl::Wire || decl.kind == Decl::Output)
                resolve(decl.name, decl.line);
    }

    Wire
    toBool(Wire w)
    {
        return w.width() == 1 ? w : w.redOr();
    }

    Wire
    elabExpr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Num:
            return d.lit(e.width, e.value);
          case Expr::Ref:
            return resolve(e.op, e.line);
          case Expr::Index: {
            Symbol &s = lookup(e.op, e.line);
            Wire idx = elabExpr(*e.args[0]);
            if (s.kind == Decl::Mem)
                return d.memRead(s.mem, idx);
            // Constant bit select of a vector.
            if (e.args[0]->kind != Expr::Num)
                err(e.line, "bit selects must be constant (use a "
                            "memory for dynamic indexing)");
            uint32_t bit = static_cast<uint32_t>(e.args[0]->value);
            Wire v = resolve(e.op, e.line);
            if (bit >= v.width())
                err(e.line, "bit select out of range");
            return v.bit(bit);
          }
          case Expr::Range: {
            Wire v = resolve(e.op, e.line);
            if (e.msb < e.lsb || e.msb >= v.width())
                err(e.line, "part select out of range");
            return v.slice(e.lsb,
                           static_cast<uint16_t>(e.msb - e.lsb + 1));
          }
          case Expr::Unary: {
            Wire a = elabExpr(*e.args[0]);
            if (e.op == "~")
                return ~a;
            if (e.op == "!")
                return ~toBool(a);
            if (e.op == "-")
                return a.neg();
            if (e.op == "&")
                return a.redAnd();
            if (e.op == "|")
                return a.redOr();
            if (e.op == "^")
                return a.redXor();
            err(e.line, "bad unary operator " + e.op);
          }
          case Expr::Binary: {
            Wire a = elabExpr(*e.args[0]);
            Wire b = elabExpr(*e.args[1]);
            const std::string &op = e.op;
            if (op == "||")
                return toBool(a) | toBool(b);
            if (op == "&&")
                return toBool(a) & toBool(b);
            if (op == "<<")
                return a << b;
            if (op == ">>")
                return a >> b;
            if (op == ">>>")
                return a.sra(b);
            // Width-balancing (zero extension) for the rest.
            uint16_t w = std::max(a.width(), b.width());
            a = a.resize(w);
            b = b.resize(w);
            if (op == "|")
                return a | b;
            if (op == "^")
                return a ^ b;
            if (op == "&")
                return a & b;
            if (op == "==")
                return a == b;
            if (op == "!=")
                return a != b;
            if (op == "<")
                return a.ult(b);
            if (op == "<=")
                return a.ule(b);
            if (op == ">")
                return b.ult(a);
            if (op == ">=")
                return b.ule(a);
            if (op == "+")
                return a + b;
            if (op == "-")
                return a - b;
            if (op == "*")
                return a * b;
            err(e.line, "bad binary operator " + op);
          }
          case Expr::Ternary: {
            Wire c = toBool(elabExpr(*e.args[0]));
            Wire t = elabExpr(*e.args[1]);
            Wire f = elabExpr(*e.args[2]);
            uint16_t w = std::max(t.width(), f.width());
            return d.mux(c, t.resize(w), f.resize(w));
          }
          case Expr::Concat: {
            Wire acc = elabExpr(*e.args[0]);
            for (size_t i = 1; i < e.args.size(); ++i)
                acc = acc.concat(elabExpr(*e.args[i]));
            return acc;
          }
          case Expr::Repl: {
            if (e.value == 0 || e.value > 64)
                err(e.line, "bad replication count");
            Wire part = elabExpr(*e.args[0]);
            Wire acc = part;
            for (uint64_t i = 1; i < e.value; ++i)
                acc = acc.concat(part);
            return acc;
          }
        }
        err(e.line, "unhandled expression");
    }

    /** Execute one statement under path condition @p cond (invalid
     *  wire = unconditional), updating the next-value environment. */
    void
    exec(const Stmt &s, std::map<std::string, Wire> &env, Wire cond)
    {
        switch (s.kind) {
          case Stmt::Block:
            for (const StmtP &sub : s.stmts)
                exec(*sub, env, cond);
            return;
          case Stmt::NonBlocking: {
            Symbol &sym = lookup(s.target, s.line);
            if (s.index) {
                if (sym.kind != Decl::Mem)
                    err(s.line, s.target + " is not a memory");
                Wire addr = elabExpr(*s.index);
                Wire data = elabExpr(*s.rhs).resize(sym.width);
                Wire en = cond.valid() ? cond : d.lit(1, 1);
                d.memWrite(sym.mem, addr, data, en);
                return;
            }
            if (sym.kind != Decl::Reg && sym.kind != Decl::OutputReg)
                err(s.line, "non-blocking target " + s.target +
                    " must be a reg");
            if (regOwner.count(s.target) &&
                regOwner[s.target] != currentBlock)
                err(s.line, s.target +
                    " is written from two always blocks");
            regOwner[s.target] = currentBlock;
            Wire rhs = elabExpr(*s.rhs).resize(sym.width);
            Wire prev = env.count(s.target) ? env[s.target]
                                            : d.read(sym.reg);
            env[s.target] =
                cond.valid() ? d.mux(cond, rhs, prev) : rhs;
            return;
          }
          case Stmt::If: {
            Wire c = toBool(elabExpr(*s.cond));
            Wire then_c = cond.valid() ? (cond & c) : c;
            exec(*s.thenS, env, then_c);
            if (s.elseS) {
                Wire else_c = cond.valid() ? (cond & ~c) : ~c;
                exec(*s.elseS, env, else_c);
            }
            return;
          }
          case Stmt::Case: {
            Wire subj = elabExpr(*s.subject);
            Wire taken = d.lit(1, 0); // any earlier item matched
            for (const Stmt::CaseItem &item : s.items) {
                Wire match = d.lit(1, 0);
                for (auto [val, w] : item.labels) {
                    (void)w;
                    match = match |
                        (subj == d.lit(subj.width(), val));
                }
                Wire c = match & ~taken;
                Wire item_c = cond.valid() ? (cond & c) : c;
                exec(*item.body, env, item_c);
                taken = taken | match;
            }
            if (s.defaultS) {
                Wire c = ~taken;
                Wire def_c = cond.valid() ? (cond & c) : c;
                exec(*s.defaultS, env, def_c);
            }
            return;
          }
        }
    }

    void
    elaborateAlways()
    {
        for (size_t bi = 0; bi < m.always.size(); ++bi) {
            currentBlock = static_cast<int>(bi);
            std::map<std::string, Wire> env;
            exec(*m.always[bi].body, env, Wire());
            for (auto &[name, next] : env)
                d.next(syms[name].reg, next);
            driven.insert(env.begin(), env.end());
        }
    }

    void
    driveUndrivenRegs()
    {
        for (Decl &decl : m.decls) {
            if (decl.kind != Decl::Reg && decl.kind != Decl::OutputReg)
                continue;
            if (driven.count(decl.name))
                continue;
            Symbol &s = syms[decl.name];
            d.next(s.reg, d.read(s.reg)); // constant register
        }
    }

    void
    emitOutputs()
    {
        for (Decl &decl : m.decls) {
            if (decl.kind == Decl::Output) {
                d.output(decl.name, resolve(decl.name, decl.line));
            } else if (decl.kind == Decl::OutputReg) {
                d.output(decl.name, d.read(syms[decl.name].reg));
            }
        }
    }

    Module m;
    Design d;
    std::string clock;
    std::map<std::string, Symbol> syms;
    std::map<std::string, Wire> driven;
    std::map<std::string, int> regOwner;
    int currentBlock = 0;
};

} // namespace

Netlist
parseVerilog(const std::string &text)
{
    Parser parser(text);
    Flattener flattener(parser.parseFile());
    Elaborator elab(flattener.run());
    return elab.run();
}

Netlist
parseVerilogFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("cannot open %s", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseVerilog(ss.str());
}

} // namespace parendi::frontend
