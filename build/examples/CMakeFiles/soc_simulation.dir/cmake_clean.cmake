file(REMOVE_RECURSE
  "CMakeFiles/soc_simulation.dir/soc_simulation.cpp.o"
  "CMakeFiles/soc_simulation.dir/soc_simulation.cpp.o.d"
  "soc_simulation"
  "soc_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
