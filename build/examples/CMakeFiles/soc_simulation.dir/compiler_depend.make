# Empty compiler generated dependencies file for soc_simulation.
# This may be replaced when dependencies are built.
