file(REMOVE_RECURSE
  "CMakeFiles/verilog_flow.dir/verilog_flow.cpp.o"
  "CMakeFiles/verilog_flow.dir/verilog_flow.cpp.o.d"
  "verilog_flow"
  "verilog_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
