# Empty compiler generated dependencies file for verilog_flow.
# This may be replaced when dependencies are built.
