file(REMOVE_RECURSE
  "CMakeFiles/custom_netlist.dir/custom_netlist.cpp.o"
  "CMakeFiles/custom_netlist.dir/custom_netlist.cpp.o.d"
  "custom_netlist"
  "custom_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
