# Empty compiler generated dependencies file for custom_netlist.
# This may be replaced when dependencies are built.
