# Empty compiler generated dependencies file for x86_model_test.
# This may be replaced when dependencies are built.
