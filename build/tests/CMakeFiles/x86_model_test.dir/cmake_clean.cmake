file(REMOVE_RECURSE
  "CMakeFiles/x86_model_test.dir/x86_model_test.cc.o"
  "CMakeFiles/x86_model_test.dir/x86_model_test.cc.o.d"
  "x86_model_test"
  "x86_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
