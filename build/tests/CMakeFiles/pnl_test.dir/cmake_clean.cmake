file(REMOVE_RECURSE
  "CMakeFiles/pnl_test.dir/pnl_test.cc.o"
  "CMakeFiles/pnl_test.dir/pnl_test.cc.o.d"
  "pnl_test"
  "pnl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
