# Empty dependencies file for pnl_test.
# This may be replaced when dependencies are built.
