file(REMOVE_RECURSE
  "CMakeFiles/verilog_hier_test.dir/verilog_hier_test.cc.o"
  "CMakeFiles/verilog_hier_test.dir/verilog_hier_test.cc.o.d"
  "verilog_hier_test"
  "verilog_hier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_hier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
