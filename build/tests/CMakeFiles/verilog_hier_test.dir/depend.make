# Empty dependencies file for verilog_hier_test.
# This may be replaced when dependencies are built.
