# Empty dependencies file for verilog_soc_test.
# This may be replaced when dependencies are built.
