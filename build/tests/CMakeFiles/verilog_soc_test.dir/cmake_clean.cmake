file(REMOVE_RECURSE
  "CMakeFiles/verilog_soc_test.dir/verilog_soc_test.cc.o"
  "CMakeFiles/verilog_soc_test.dir/verilog_soc_test.cc.o.d"
  "verilog_soc_test"
  "verilog_soc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_soc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
