# Empty dependencies file for partition_sweep_test.
# This may be replaced when dependencies are built.
