file(REMOVE_RECURSE
  "CMakeFiles/partition_sweep_test.dir/partition_sweep_test.cc.o"
  "CMakeFiles/partition_sweep_test.dir/partition_sweep_test.cc.o.d"
  "partition_sweep_test"
  "partition_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
