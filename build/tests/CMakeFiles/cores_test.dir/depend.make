# Empty dependencies file for cores_test.
# This may be replaced when dependencies are built.
