file(REMOVE_RECURSE
  "CMakeFiles/cores_test.dir/cores_test.cc.o"
  "CMakeFiles/cores_test.dir/cores_test.cc.o.d"
  "cores_test"
  "cores_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cores_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
