# Empty dependencies file for fuzz_equiv_test.
# This may be replaced when dependencies are built.
