file(REMOVE_RECURSE
  "CMakeFiles/fuzz_equiv_test.dir/fuzz_equiv_test.cc.o"
  "CMakeFiles/fuzz_equiv_test.dir/fuzz_equiv_test.cc.o.d"
  "fuzz_equiv_test"
  "fuzz_equiv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
