# Empty compiler generated dependencies file for designs_test.
# This may be replaced when dependencies are built.
