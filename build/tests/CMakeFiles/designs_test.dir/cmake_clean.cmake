file(REMOVE_RECURSE
  "CMakeFiles/designs_test.dir/designs_test.cc.o"
  "CMakeFiles/designs_test.dir/designs_test.cc.o.d"
  "designs_test"
  "designs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/designs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
