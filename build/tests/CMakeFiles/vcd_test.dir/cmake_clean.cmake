file(REMOVE_RECURSE
  "CMakeFiles/vcd_test.dir/vcd_test.cc.o"
  "CMakeFiles/vcd_test.dir/vcd_test.cc.o.d"
  "vcd_test"
  "vcd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
