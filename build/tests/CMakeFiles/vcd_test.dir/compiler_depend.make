# Empty compiler generated dependencies file for vcd_test.
# This may be replaced when dependencies are built.
