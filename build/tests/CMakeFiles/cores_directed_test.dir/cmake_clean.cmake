file(REMOVE_RECURSE
  "CMakeFiles/cores_directed_test.dir/cores_directed_test.cc.o"
  "CMakeFiles/cores_directed_test.dir/cores_directed_test.cc.o.d"
  "cores_directed_test"
  "cores_directed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cores_directed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
