# Empty dependencies file for cores_directed_test.
# This may be replaced when dependencies are built.
