
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/eval_test.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/parendi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/parendi_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/ipu/CMakeFiles/parendi_ipu.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/parendi_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/parendi_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/parendi_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/parendi_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/parendi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parendi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
