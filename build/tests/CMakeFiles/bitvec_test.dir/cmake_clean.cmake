file(REMOVE_RECURSE
  "CMakeFiles/bitvec_test.dir/bitvec_test.cc.o"
  "CMakeFiles/bitvec_test.dir/bitvec_test.cc.o.d"
  "bitvec_test"
  "bitvec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitvec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
