# Empty dependencies file for fig16_multi_strategy.
# This may be replaced when dependencies are built.
