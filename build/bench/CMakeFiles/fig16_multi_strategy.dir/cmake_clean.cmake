file(REMOVE_RECURSE
  "CMakeFiles/fig16_multi_strategy.dir/fig16_multi_strategy.cc.o"
  "CMakeFiles/fig16_multi_strategy.dir/fig16_multi_strategy.cc.o.d"
  "fig16_multi_strategy"
  "fig16_multi_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_multi_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
