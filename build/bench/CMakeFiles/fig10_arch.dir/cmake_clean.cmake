file(REMOVE_RECURSE
  "CMakeFiles/fig10_arch.dir/fig10_arch.cc.o"
  "CMakeFiles/fig10_arch.dir/fig10_arch.cc.o.d"
  "fig10_arch"
  "fig10_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
