# Empty compiler generated dependencies file for fig10_arch.
# This may be replaced when dependencies are built.
