# Empty dependencies file for table2_compile.
# This may be replaced when dependencies are built.
