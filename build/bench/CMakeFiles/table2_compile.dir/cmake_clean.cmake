file(REMOVE_RECURSE
  "CMakeFiles/table2_compile.dir/table2_compile.cc.o"
  "CMakeFiles/table2_compile.dir/table2_compile.cc.o.d"
  "table2_compile"
  "table2_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
