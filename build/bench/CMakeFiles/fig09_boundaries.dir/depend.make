# Empty dependencies file for fig09_boundaries.
# This may be replaced when dependencies are built.
