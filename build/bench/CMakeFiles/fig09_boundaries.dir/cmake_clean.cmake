file(REMOVE_RECURSE
  "CMakeFiles/fig09_boundaries.dir/fig09_boundaries.cc.o"
  "CMakeFiles/fig09_boundaries.dir/fig09_boundaries.cc.o.d"
  "fig09_boundaries"
  "fig09_boundaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
