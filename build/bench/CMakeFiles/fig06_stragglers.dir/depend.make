# Empty dependencies file for fig06_stragglers.
# This may be replaced when dependencies are built.
