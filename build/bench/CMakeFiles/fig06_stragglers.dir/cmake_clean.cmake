file(REMOVE_RECURSE
  "CMakeFiles/fig06_stragglers.dir/fig06_stragglers.cc.o"
  "CMakeFiles/fig06_stragglers.dir/fig06_stragglers.cc.o.d"
  "fig06_stragglers"
  "fig06_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
