file(REMOVE_RECURSE
  "CMakeFiles/fig15_partition_cmp.dir/fig15_partition_cmp.cc.o"
  "CMakeFiles/fig15_partition_cmp.dir/fig15_partition_cmp.cc.o.d"
  "fig15_partition_cmp"
  "fig15_partition_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_partition_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
