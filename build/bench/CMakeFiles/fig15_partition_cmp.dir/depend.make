# Empty dependencies file for fig15_partition_cmp.
# This may be replaced when dependencies are built.
