# Empty compiler generated dependencies file for sec65_cost.
# This may be replaced when dependencies are built.
