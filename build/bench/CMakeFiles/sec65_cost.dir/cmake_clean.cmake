file(REMOVE_RECURSE
  "CMakeFiles/sec65_cost.dir/sec65_cost.cc.o"
  "CMakeFiles/sec65_cost.dir/sec65_cost.cc.o.d"
  "sec65_cost"
  "sec65_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec65_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
