file(REMOVE_RECURSE
  "CMakeFiles/table1_small.dir/table1_small.cc.o"
  "CMakeFiles/table1_small.dir/table1_small.cc.o.d"
  "table1_small"
  "table1_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
