# Empty compiler generated dependencies file for table1_small.
# This may be replaced when dependencies are built.
