# Empty dependencies file for fig14_absorb.
# This may be replaced when dependencies are built.
