file(REMOVE_RECURSE
  "CMakeFiles/fig14_absorb.dir/fig14_absorb.cc.o"
  "CMakeFiles/fig14_absorb.dir/fig14_absorb.cc.o.d"
  "fig14_absorb"
  "fig14_absorb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_absorb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
