# Empty compiler generated dependencies file for fig08_vsmall.
# This may be replaced when dependencies are built.
