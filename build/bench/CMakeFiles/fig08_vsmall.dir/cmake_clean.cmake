file(REMOVE_RECURSE
  "CMakeFiles/fig08_vsmall.dir/fig08_vsmall.cc.o"
  "CMakeFiles/fig08_vsmall.dir/fig08_vsmall.cc.o.d"
  "fig08_vsmall"
  "fig08_vsmall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vsmall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
