# Empty dependencies file for fig04_sync.
# This may be replaced when dependencies are built.
