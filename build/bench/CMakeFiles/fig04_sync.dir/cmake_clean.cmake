file(REMOVE_RECURSE
  "CMakeFiles/fig04_sync.dir/fig04_sync.cc.o"
  "CMakeFiles/fig04_sync.dir/fig04_sync.cc.o.d"
  "fig04_sync"
  "fig04_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
