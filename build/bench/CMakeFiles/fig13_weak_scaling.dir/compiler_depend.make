# Empty compiler generated dependencies file for fig13_weak_scaling.
# This may be replaced when dependencies are built.
