file(REMOVE_RECURSE
  "CMakeFiles/fig13_weak_scaling.dir/fig13_weak_scaling.cc.o"
  "CMakeFiles/fig13_weak_scaling.dir/fig13_weak_scaling.cc.o.d"
  "fig13_weak_scaling"
  "fig13_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
