# Empty dependencies file for fig05_comm.
# This may be replaced when dependencies are built.
