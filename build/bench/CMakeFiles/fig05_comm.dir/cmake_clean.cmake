file(REMOVE_RECURSE
  "CMakeFiles/fig05_comm.dir/fig05_comm.cc.o"
  "CMakeFiles/fig05_comm.dir/fig05_comm.cc.o.d"
  "fig05_comm"
  "fig05_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
