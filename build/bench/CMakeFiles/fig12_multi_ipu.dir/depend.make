# Empty dependencies file for fig12_multi_ipu.
# This may be replaced when dependencies are built.
