file(REMOVE_RECURSE
  "CMakeFiles/fig12_multi_ipu.dir/fig12_multi_ipu.cc.o"
  "CMakeFiles/fig12_multi_ipu.dir/fig12_multi_ipu.cc.o.d"
  "fig12_multi_ipu"
  "fig12_multi_ipu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_multi_ipu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
