# Empty dependencies file for host_throughput.
# This may be replaced when dependencies are built.
