file(REMOVE_RECURSE
  "CMakeFiles/host_throughput.dir/host_throughput.cc.o"
  "CMakeFiles/host_throughput.dir/host_throughput.cc.o.d"
  "host_throughput"
  "host_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
