# Empty dependencies file for fig11_single_ipu.
# This may be replaced when dependencies are built.
