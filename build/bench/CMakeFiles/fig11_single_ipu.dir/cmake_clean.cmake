file(REMOVE_RECURSE
  "CMakeFiles/fig11_single_ipu.dir/fig11_single_ipu.cc.o"
  "CMakeFiles/fig11_single_ipu.dir/fig11_single_ipu.cc.o.d"
  "fig11_single_ipu"
  "fig11_single_ipu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_single_ipu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
