file(REMOVE_RECURSE
  "CMakeFiles/sec3_activity.dir/sec3_activity.cc.o"
  "CMakeFiles/sec3_activity.dir/sec3_activity.cc.o.d"
  "sec3_activity"
  "sec3_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
