# Empty compiler generated dependencies file for sec3_activity.
# This may be replaced when dependencies are built.
