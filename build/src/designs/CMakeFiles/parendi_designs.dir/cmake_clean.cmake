file(REMOVE_RECURSE
  "CMakeFiles/parendi_designs.dir/bitcoin.cc.o"
  "CMakeFiles/parendi_designs.dir/bitcoin.cc.o.d"
  "CMakeFiles/parendi_designs.dir/isa.cc.o"
  "CMakeFiles/parendi_designs.dir/isa.cc.o.d"
  "CMakeFiles/parendi_designs.dir/mc.cc.o"
  "CMakeFiles/parendi_designs.dir/mc.cc.o.d"
  "CMakeFiles/parendi_designs.dir/noc.cc.o"
  "CMakeFiles/parendi_designs.dir/noc.cc.o.d"
  "CMakeFiles/parendi_designs.dir/pico.cc.o"
  "CMakeFiles/parendi_designs.dir/pico.cc.o.d"
  "CMakeFiles/parendi_designs.dir/prng.cc.o"
  "CMakeFiles/parendi_designs.dir/prng.cc.o.d"
  "CMakeFiles/parendi_designs.dir/rocket.cc.o"
  "CMakeFiles/parendi_designs.dir/rocket.cc.o.d"
  "CMakeFiles/parendi_designs.dir/vta.cc.o"
  "CMakeFiles/parendi_designs.dir/vta.cc.o.d"
  "libparendi_designs.a"
  "libparendi_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
