# Empty dependencies file for parendi_designs.
# This may be replaced when dependencies are built.
