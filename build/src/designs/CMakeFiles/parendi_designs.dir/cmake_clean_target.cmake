file(REMOVE_RECURSE
  "libparendi_designs.a"
)
