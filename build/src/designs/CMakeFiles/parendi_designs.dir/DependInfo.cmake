
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designs/bitcoin.cc" "src/designs/CMakeFiles/parendi_designs.dir/bitcoin.cc.o" "gcc" "src/designs/CMakeFiles/parendi_designs.dir/bitcoin.cc.o.d"
  "/root/repo/src/designs/isa.cc" "src/designs/CMakeFiles/parendi_designs.dir/isa.cc.o" "gcc" "src/designs/CMakeFiles/parendi_designs.dir/isa.cc.o.d"
  "/root/repo/src/designs/mc.cc" "src/designs/CMakeFiles/parendi_designs.dir/mc.cc.o" "gcc" "src/designs/CMakeFiles/parendi_designs.dir/mc.cc.o.d"
  "/root/repo/src/designs/noc.cc" "src/designs/CMakeFiles/parendi_designs.dir/noc.cc.o" "gcc" "src/designs/CMakeFiles/parendi_designs.dir/noc.cc.o.d"
  "/root/repo/src/designs/pico.cc" "src/designs/CMakeFiles/parendi_designs.dir/pico.cc.o" "gcc" "src/designs/CMakeFiles/parendi_designs.dir/pico.cc.o.d"
  "/root/repo/src/designs/prng.cc" "src/designs/CMakeFiles/parendi_designs.dir/prng.cc.o" "gcc" "src/designs/CMakeFiles/parendi_designs.dir/prng.cc.o.d"
  "/root/repo/src/designs/rocket.cc" "src/designs/CMakeFiles/parendi_designs.dir/rocket.cc.o" "gcc" "src/designs/CMakeFiles/parendi_designs.dir/rocket.cc.o.d"
  "/root/repo/src/designs/vta.cc" "src/designs/CMakeFiles/parendi_designs.dir/vta.cc.o" "gcc" "src/designs/CMakeFiles/parendi_designs.dir/vta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/parendi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parendi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
