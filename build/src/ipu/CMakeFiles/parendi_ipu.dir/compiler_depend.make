# Empty compiler generated dependencies file for parendi_ipu.
# This may be replaced when dependencies are built.
