file(REMOVE_RECURSE
  "CMakeFiles/parendi_ipu.dir/exchange.cc.o"
  "CMakeFiles/parendi_ipu.dir/exchange.cc.o.d"
  "CMakeFiles/parendi_ipu.dir/machine.cc.o"
  "CMakeFiles/parendi_ipu.dir/machine.cc.o.d"
  "libparendi_ipu.a"
  "libparendi_ipu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_ipu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
