file(REMOVE_RECURSE
  "libparendi_ipu.a"
)
