file(REMOVE_RECURSE
  "libparendi_rtl.a"
)
