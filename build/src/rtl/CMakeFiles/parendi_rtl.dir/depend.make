# Empty dependencies file for parendi_rtl.
# This may be replaced when dependencies are built.
