
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/analysis.cc" "src/rtl/CMakeFiles/parendi_rtl.dir/analysis.cc.o" "gcc" "src/rtl/CMakeFiles/parendi_rtl.dir/analysis.cc.o.d"
  "/root/repo/src/rtl/bitvec.cc" "src/rtl/CMakeFiles/parendi_rtl.dir/bitvec.cc.o" "gcc" "src/rtl/CMakeFiles/parendi_rtl.dir/bitvec.cc.o.d"
  "/root/repo/src/rtl/eval.cc" "src/rtl/CMakeFiles/parendi_rtl.dir/eval.cc.o" "gcc" "src/rtl/CMakeFiles/parendi_rtl.dir/eval.cc.o.d"
  "/root/repo/src/rtl/event.cc" "src/rtl/CMakeFiles/parendi_rtl.dir/event.cc.o" "gcc" "src/rtl/CMakeFiles/parendi_rtl.dir/event.cc.o.d"
  "/root/repo/src/rtl/interp.cc" "src/rtl/CMakeFiles/parendi_rtl.dir/interp.cc.o" "gcc" "src/rtl/CMakeFiles/parendi_rtl.dir/interp.cc.o.d"
  "/root/repo/src/rtl/netlist.cc" "src/rtl/CMakeFiles/parendi_rtl.dir/netlist.cc.o" "gcc" "src/rtl/CMakeFiles/parendi_rtl.dir/netlist.cc.o.d"
  "/root/repo/src/rtl/opt.cc" "src/rtl/CMakeFiles/parendi_rtl.dir/opt.cc.o" "gcc" "src/rtl/CMakeFiles/parendi_rtl.dir/opt.cc.o.d"
  "/root/repo/src/rtl/vcd.cc" "src/rtl/CMakeFiles/parendi_rtl.dir/vcd.cc.o" "gcc" "src/rtl/CMakeFiles/parendi_rtl.dir/vcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/parendi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
