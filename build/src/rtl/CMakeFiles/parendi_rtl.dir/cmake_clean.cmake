file(REMOVE_RECURSE
  "CMakeFiles/parendi_rtl.dir/analysis.cc.o"
  "CMakeFiles/parendi_rtl.dir/analysis.cc.o.d"
  "CMakeFiles/parendi_rtl.dir/bitvec.cc.o"
  "CMakeFiles/parendi_rtl.dir/bitvec.cc.o.d"
  "CMakeFiles/parendi_rtl.dir/eval.cc.o"
  "CMakeFiles/parendi_rtl.dir/eval.cc.o.d"
  "CMakeFiles/parendi_rtl.dir/event.cc.o"
  "CMakeFiles/parendi_rtl.dir/event.cc.o.d"
  "CMakeFiles/parendi_rtl.dir/interp.cc.o"
  "CMakeFiles/parendi_rtl.dir/interp.cc.o.d"
  "CMakeFiles/parendi_rtl.dir/netlist.cc.o"
  "CMakeFiles/parendi_rtl.dir/netlist.cc.o.d"
  "CMakeFiles/parendi_rtl.dir/opt.cc.o"
  "CMakeFiles/parendi_rtl.dir/opt.cc.o.d"
  "CMakeFiles/parendi_rtl.dir/vcd.cc.o"
  "CMakeFiles/parendi_rtl.dir/vcd.cc.o.d"
  "libparendi_rtl.a"
  "libparendi_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
