file(REMOVE_RECURSE
  "CMakeFiles/parendi_x86.dir/model.cc.o"
  "CMakeFiles/parendi_x86.dir/model.cc.o.d"
  "libparendi_x86.a"
  "libparendi_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
