file(REMOVE_RECURSE
  "libparendi_x86.a"
)
