# Empty compiler generated dependencies file for parendi_x86.
# This may be replaced when dependencies are built.
