file(REMOVE_RECURSE
  "libparendi_partition.a"
)
