# Empty dependencies file for parendi_partition.
# This may be replaced when dependencies are built.
