file(REMOVE_RECURSE
  "CMakeFiles/parendi_partition.dir/hypergraph.cc.o"
  "CMakeFiles/parendi_partition.dir/hypergraph.cc.o.d"
  "CMakeFiles/parendi_partition.dir/makespan.cc.o"
  "CMakeFiles/parendi_partition.dir/makespan.cc.o.d"
  "CMakeFiles/parendi_partition.dir/merge.cc.o"
  "CMakeFiles/parendi_partition.dir/merge.cc.o.d"
  "CMakeFiles/parendi_partition.dir/process.cc.o"
  "CMakeFiles/parendi_partition.dir/process.cc.o.d"
  "CMakeFiles/parendi_partition.dir/strategy.cc.o"
  "CMakeFiles/parendi_partition.dir/strategy.cc.o.d"
  "libparendi_partition.a"
  "libparendi_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
