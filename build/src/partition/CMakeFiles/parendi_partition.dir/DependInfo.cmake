
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/hypergraph.cc" "src/partition/CMakeFiles/parendi_partition.dir/hypergraph.cc.o" "gcc" "src/partition/CMakeFiles/parendi_partition.dir/hypergraph.cc.o.d"
  "/root/repo/src/partition/makespan.cc" "src/partition/CMakeFiles/parendi_partition.dir/makespan.cc.o" "gcc" "src/partition/CMakeFiles/parendi_partition.dir/makespan.cc.o.d"
  "/root/repo/src/partition/merge.cc" "src/partition/CMakeFiles/parendi_partition.dir/merge.cc.o" "gcc" "src/partition/CMakeFiles/parendi_partition.dir/merge.cc.o.d"
  "/root/repo/src/partition/process.cc" "src/partition/CMakeFiles/parendi_partition.dir/process.cc.o" "gcc" "src/partition/CMakeFiles/parendi_partition.dir/process.cc.o.d"
  "/root/repo/src/partition/strategy.cc" "src/partition/CMakeFiles/parendi_partition.dir/strategy.cc.o" "gcc" "src/partition/CMakeFiles/parendi_partition.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fiber/CMakeFiles/parendi_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/parendi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parendi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
