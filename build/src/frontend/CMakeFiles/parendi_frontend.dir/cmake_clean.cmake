file(REMOVE_RECURSE
  "CMakeFiles/parendi_frontend.dir/pnl.cc.o"
  "CMakeFiles/parendi_frontend.dir/pnl.cc.o.d"
  "CMakeFiles/parendi_frontend.dir/verilog.cc.o"
  "CMakeFiles/parendi_frontend.dir/verilog.cc.o.d"
  "libparendi_frontend.a"
  "libparendi_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
