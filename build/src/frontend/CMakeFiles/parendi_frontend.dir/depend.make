# Empty dependencies file for parendi_frontend.
# This may be replaced when dependencies are built.
