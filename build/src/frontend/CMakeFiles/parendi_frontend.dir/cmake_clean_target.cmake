file(REMOVE_RECURSE
  "libparendi_frontend.a"
)
