file(REMOVE_RECURSE
  "CMakeFiles/parendi_fiber.dir/cost.cc.o"
  "CMakeFiles/parendi_fiber.dir/cost.cc.o.d"
  "CMakeFiles/parendi_fiber.dir/fiber.cc.o"
  "CMakeFiles/parendi_fiber.dir/fiber.cc.o.d"
  "libparendi_fiber.a"
  "libparendi_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
