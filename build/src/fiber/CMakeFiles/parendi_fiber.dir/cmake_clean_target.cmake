file(REMOVE_RECURSE
  "libparendi_fiber.a"
)
