# Empty dependencies file for parendi_fiber.
# This may be replaced when dependencies are built.
