file(REMOVE_RECURSE
  "CMakeFiles/parendi_util.dir/logging.cc.o"
  "CMakeFiles/parendi_util.dir/logging.cc.o.d"
  "CMakeFiles/parendi_util.dir/table.cc.o"
  "CMakeFiles/parendi_util.dir/table.cc.o.d"
  "libparendi_util.a"
  "libparendi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
