file(REMOVE_RECURSE
  "libparendi_util.a"
)
