# Empty compiler generated dependencies file for parendi_util.
# This may be replaced when dependencies are built.
