# Empty dependencies file for parendi_core.
# This may be replaced when dependencies are built.
