file(REMOVE_RECURSE
  "libparendi_core.a"
)
