file(REMOVE_RECURSE
  "CMakeFiles/parendi_core.dir/compiler.cc.o"
  "CMakeFiles/parendi_core.dir/compiler.cc.o.d"
  "CMakeFiles/parendi_core.dir/stats.cc.o"
  "CMakeFiles/parendi_core.dir/stats.cc.o.d"
  "libparendi_core.a"
  "libparendi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
