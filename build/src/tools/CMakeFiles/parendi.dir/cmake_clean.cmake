file(REMOVE_RECURSE
  "CMakeFiles/parendi.dir/parendi_main.cc.o"
  "CMakeFiles/parendi.dir/parendi_main.cc.o.d"
  "parendi"
  "parendi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parendi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
