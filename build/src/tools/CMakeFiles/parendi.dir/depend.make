# Empty dependencies file for parendi.
# This may be replaced when dependencies are built.
