#!/usr/bin/env bash
# Configure, build and run the test suite under ASan + UBSan.
# Usage: scripts/sanitize.sh [ctest args...]
# Extra arguments are forwarded to ctest, e.g.
#   scripts/sanitize.sh -R fuzz_equiv_test
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . \
    -DPARENDI_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"

export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"
