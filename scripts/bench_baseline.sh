#!/usr/bin/env bash
# Measure the host engine matrix and write the per-PR perf baseline
# (BENCH_PR<N>.json at the repo root — the BENCH_*.json trajectory).
# Usage: scripts/bench_baseline.sh [OUT.json]
#   BUILD_DIR=dir          build directory (default build-bench, Release)
#   PARENDI_BENCH_FAST=1   trim measured cycle counts (CI smoke)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${1:-BENCH_PR5.json}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target host_throughput

# --benchmark_filter=NONE skips the google-benchmark suite; only the
# --json engine matrix (pico + bitcoin across every engine) runs.
# --threads-sweep widens par/par-cgen to the 1/2/4/8 scaling curve.
"$BUILD_DIR"/bench/host_throughput --benchmark_filter=NONE \
    --threads-sweep --json "$OUT"
echo "wrote $OUT"
