#!/usr/bin/env bash
# Measure the host engine matrix and write the per-PR perf baseline
# (BENCH_PR<N>.json at the repo root — the BENCH_*.json trajectory).
# Usage: scripts/bench_baseline.sh [OUT.json]
#   BUILD_DIR=dir          build directory (default build-bench, Release)
#   PARENDI_BENCH_FAST=1   trim measured cycle counts (CI smoke)
#   BENCH_REPEAT=N         min-of-N repetitions per measurement (default 3)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${1:-BENCH_PR10.json}
REPEAT=${BENCH_REPEAT:-3}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target host_throughput serve_throughput

# --benchmark_filter=NONE skips the google-benchmark suite; only the
# --json engine matrix (pico + bitcoin across every engine) runs.
# --threads-sweep widens par/par-cgen to the 1/2/4/8 scaling curve;
# --replicas-sweep appends the gang rows (cgen and par-cgen at
# R=1/4/8/16 replica lanes); --activity-sweep appends the activity
# A/B rows (gated + bitcoin, guarded vs always-eval, cgen and
# par-cgen@4). --repeat N keeps the min of N runs per cell, damping
# scheduler noise on shared runners.
"$BUILD_DIR"/bench/host_throughput --benchmark_filter=NONE \
    --threads-sweep --replicas-sweep --activity-sweep \
    --repeat "$REPEAT" --json "$OUT"

# Serving-layer throughput: 8 closed-loop clients on one shared
# BspPool, appended to the same trajectory file (engines "serve-c1"
# and "serve-c8").
SERVE_OUT=$(mktemp)
"$BUILD_DIR"/bench/serve_throughput --json "$SERVE_OUT"
python3 - "$OUT" "$SERVE_OUT" <<'EOF'
import json, sys
out, serve = sys.argv[1], sys.argv[2]
base = json.load(open(out))
base["records"].extend(json.load(open(serve))["records"])
json.dump(base, open(out, "w"), indent=2)
EOF
rm -f "$SERVE_OUT"
echo "wrote $OUT"
