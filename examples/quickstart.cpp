/**
 * @file
 * Quickstart: build a small circuit with the C++ DSL, compile it for
 * the (simulated) IPU with Parendi, and simulate it — with the
 * reference interpreter checking the result.
 *
 * Run: ./quickstart
 */

#include <cstdio>

#include "core/compiler.hh"
#include "rtl/dsl.hh"
#include "rtl/interp.hh"

using namespace parendi;

int
main()
{
    // -- 1. Describe the hardware -------------------------------------
    // A 32-bit counter plus a Fibonacci register pair.
    rtl::Design d("quickstart");
    auto en = d.input("en", 1);
    auto cnt = d.reg("cnt", 32);
    d.next(cnt, d.mux(en, d.read(cnt) + d.lit(32, 1), d.read(cnt)));

    auto fib_a = d.reg("fib_a", 64, 0);
    auto fib_b = d.reg("fib_b", 64, 1);
    d.next(fib_a, d.read(fib_b));
    d.next(fib_b, d.read(fib_a) + d.read(fib_b));

    d.output("count", d.read(cnt));
    d.output("fib", d.read(fib_a));

    // -- 2. Compile for the IPU system ---------------------------------
    core::CompilerOptions opt;
    opt.chips = 1;
    opt.tilesPerChip = 8; // tiny designs need few tiles
    auto sim = core::compile(d.finish(), opt);

    std::printf("compiled: %zu fibers -> %u tiles, modeled rate "
                "%.1f kHz\n",
                sim->report().fibers, sim->machine().tilesUsed(),
                sim->rateKHz());
    const ipu::CycleCosts &c = sim->cycleCosts();
    std::printf("per-cycle model: t_comp=%.0f t_comm=%.0f t_sync=%.0f "
                "IPU cycles\n", c.tComp, c.tComm(), c.tSync);

    // -- 3. Simulate ----------------------------------------------------
    sim->machine().poke("en", uint64_t{1});
    sim->step(90);
    std::printf("after 90 cycles: count=%llu fib=%llu\n",
                static_cast<unsigned long long>(
                    sim->machine().peek("count").toUint64()),
                static_cast<unsigned long long>(
                    sim->machine().peek("fib").toUint64()));

    // -- 4. Cross-check against the golden interpreter ------------------
    rtl::Design d2("check");
    auto a2 = d2.reg("a", 64, 0);
    auto b2 = d2.reg("b", 64, 1);
    d2.next(a2, d2.read(b2));
    d2.next(b2, d2.read(a2) + d2.read(b2));
    rtl::Interpreter golden(d2.finish());
    golden.step(90);
    bool ok = golden.peekRegister("a") ==
        sim->machine().peek("fib");
    std::printf("golden model agrees: %s\n", ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
