/**
 * @file
 * The paper's headline use case: simulate a multicore mesh SoC
 * (srN — an N x N NoC of processor cores, paper §6) on the
 * thousand-tile BSP machine, then read traffic statistics and
 * per-core performance counters out of the simulated design.
 *
 * Run: ./soc_simulation [N] [cycles]      (defaults: 3, 2000)
 */

#include <cstdio>
#include <cstdlib>

#include "core/compiler.hh"
#include "designs/designs.hh"

using namespace parendi;

int
main(int argc, char **argv)
{
    uint32_t n = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 3;
    uint64_t cycles =
        argc > 2 ? static_cast<uint64_t>(atoll(argv[2])) : 2000;

    designs::MeshConfig cfg;
    cfg.n = n;
    cfg.core = designs::MeshCore::Small;
    cfg.injectPeriod = 6;

    core::CompilerOptions opt;
    opt.chips = 1;
    opt.tilesPerChip = 1472;
    auto sim = core::compile(designs::makeMesh(cfg), opt);

    std::printf("sr%u: %zu DDG nodes, %zu fibers on %u tiles; "
                "modeled rate %.1f kHz\n",
                n, sim->report().metrics.nodes, sim->report().fibers,
                sim->machine().tilesUsed(), sim->rateKHz());

    sim->step(cycles);

    uint64_t tx = sim->machine().peek("tx_total").toUint64();
    uint64_t rx = sim->machine().peek("rx_total").toUint64();
    std::printf("after %llu cycles: %llu flits injected, %llu "
                "delivered (%.1f%% in flight)\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(tx),
                static_cast<unsigned long long>(rx),
                100.0 * static_cast<double>(tx - rx) /
                    static_cast<double>(tx));

    // Per-node statistics straight out of the simulated registers.
    std::printf("\nper-node rx counts:\n");
    for (uint32_t y = 0; y < n; ++y) {
        for (uint32_t x = 0; x < n; ++x) {
            std::string nm = "n" + std::to_string(x) + "_" +
                std::to_string(y) + "_rx";
            std::printf("%8llu",
                        static_cast<unsigned long long>(
                            sim->machine().peekRegister(nm)
                                .toUint64()));
        }
        std::printf("\n");
    }

    // Core performance counters (the uncore corners have none).
    std::printf("\ncore instret / branch-prediction hit rate:\n");
    for (uint32_t y = 0; y < n; ++y) {
        for (uint32_t x = 0; x < n; ++x) {
            bool uncore = (x == 0 && y == 0) || (x == 1 && y == 0) ||
                (x == 0 && y == 1);
            if (uncore) {
                std::printf("  n%u_%u: (uncore)\n", x, y);
                continue;
            }
            std::string px = "n" + std::to_string(x) + "_" +
                std::to_string(y) + "_c_";
            uint64_t instret = sim->machine()
                .peekRegister(px + "csr_instret").toUint64();
            uint64_t hits = sim->machine()
                .peekRegister(px + "bp_hits").toUint64();
            uint64_t miss = sim->machine()
                .peekRegister(px + "bp_miss").toUint64();
            std::printf("  n%u_%u: instret=%llu bp=%.0f%%\n", x, y,
                        static_cast<unsigned long long>(instret),
                        hits + miss
                            ? 100.0 * static_cast<double>(hits) /
                                static_cast<double>(hits + miss)
                            : 0.0);
        }
    }
    return 0;
}
