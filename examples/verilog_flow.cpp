/**
 * @file
 * The full Verilog flow, end to end: write a .v design to disk
 * (a two-stage pipelined checksum unit with a lookup memory), parse
 * it with the Verilog frontend, compile it for the IPU system, run
 * it, and dump a waveform for the same run via the reference
 * interpreter.
 *
 * Run: ./verilog_flow [cycles]            (default: 200)
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/compiler.hh"
#include "frontend/verilog.hh"
#include "rtl/vcd.hh"

using namespace parendi;

namespace {

const char *kDesign = R"(
// A two-stage checksum pipeline: stage 1 mixes an LFSR sample with a
// table lookup; stage 2 folds it into a running checksum.
module checksum(input clk, output [31:0] sum, output [15:0] probe);
  reg [15:0] lfsr = 16'hbeef;
  wire fb = lfsr[0] ^ lfsr[2] ^ lfsr[3] ^ lfsr[5];

  reg [31:0] table_rom [0:15];
  reg [3:0]  wr_ptr = 0;

  reg [31:0] stage1 = 0;
  reg [31:0] acc = 0;

  assign sum = acc;
  assign probe = lfsr;

  always @(posedge clk) begin
    lfsr <= {fb, lfsr[15:1]};
    // keep the table churning so lookups change over time
    table_rom[wr_ptr] <= {16'd0, lfsr} * 32'd2654435761;
    wr_ptr <= wr_ptr + 4'd1;

    stage1 <= table_rom[lfsr[3:0]] ^ {16'd0, lfsr};
    acc <= (acc << 1) + stage1;
  end
endmodule
)";

} // namespace

int
main(int argc, char **argv)
{
    uint64_t cycles =
        argc > 1 ? static_cast<uint64_t>(atoll(argv[1])) : 200;

    const char *path = "checksum.v";
    {
        std::ofstream f(path);
        f << kDesign;
    }

    rtl::Netlist nl = frontend::parseVerilogFile(path);
    std::printf("parsed %s: %zu nodes, %zu regs, %zu memories\n",
                path, nl.numNodes(), nl.numRegisters(),
                nl.numMemories());

    // Waveform of the first 32 cycles via the golden interpreter.
    {
        rtl::Interpreter tracer_sim(nl);
        std::ofstream vcd("checksum.vcd");
        rtl::InterpreterTracer tracer(tracer_sim, vcd);
        tracer.step(32);
        std::printf("wrote checksum.vcd (32 cycles of every "
                    "register)\n");
    }

    // Compile onto the IPU machine and run the full length.
    core::CompilerOptions opt;
    opt.tilesPerChip = 8;
    rtl::Interpreter golden(nl);
    auto sim = core::compile(std::move(nl), opt);
    sim->step(cycles);
    golden.step(cycles);

    std::printf("after %llu cycles: sum=0x%s probe=0x%s\n",
                static_cast<unsigned long long>(cycles),
                sim->machine().peek("sum").toHex().c_str(),
                sim->machine().peek("probe").toHex().c_str());
    bool ok = sim->machine().peek("sum") == golden.peek("sum");
    std::printf("golden model agrees: %s\n", ok ? "yes" : "NO");
    std::printf("modeled IPU rate: %.1f kHz on %u tiles\n",
                sim->rateKHz(), sim->machine().tilesUsed());
    std::remove(path);
    std::remove("checksum.vcd");
    return ok ? 0 : 1;
}
