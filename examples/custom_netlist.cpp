/**
 * @file
 * Bring-your-own-design via the PNL textual frontend: write a PNL
 * file (a gray-code counter with a lookup array), parse it, compile
 * it for the IPU, and co-simulate against the reference interpreter.
 *
 * Run: ./custom_netlist [cycles]          (default: 64)
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/compiler.hh"
#include "frontend/pnl.hh"
#include "rtl/interp.hh"

using namespace parendi;

namespace {

const char *kPnl = R"(pnl 1
design graycode
# An 8-bit counter, its gray encoding, and a histogram array counting
# how often the low 4 gray bits hit each bucket.
reg cnt 8 0
mem hist 16 16
%c    = regread cnt
%one  = const 8 1
%next = add %c %one
regnext cnt %next
%sh   = const 8 1
%shr  = shr %c %sh
%gray = xor %c %shr
%idx  = slice %gray 0 4
%cur  = memread hist %idx
%onew = const 16 1
%inc  = add %cur %onew
%en   = const 1 1
memwrite hist %idx %inc %en
output gray %gray
output bucket0 %cur
)";

} // namespace

int
main(int argc, char **argv)
{
    uint64_t cycles =
        argc > 1 ? static_cast<uint64_t>(atoll(argv[1])) : 64;

    // Round-trip through an actual file, like a user would.
    const char *path = "graycode.pnl";
    {
        std::ofstream f(path);
        f << kPnl;
    }
    rtl::Netlist nl = frontend::parsePnlFile(path);
    std::printf("parsed %s: %zu nodes, %zu registers, %zu memories\n",
                path, nl.numNodes(), nl.numRegisters(),
                nl.numMemories());

    // Co-simulate: Parendi-on-IPU vs the golden interpreter.
    rtl::Interpreter golden(nl);
    core::CompilerOptions opt;
    opt.tilesPerChip = 4;
    auto sim = core::compile(std::move(nl), opt);

    for (uint64_t i = 0; i < cycles; ++i) {
        sim->step();
        golden.step();
        if (sim->machine().peek("gray") != golden.peek("gray")) {
            std::printf("MISMATCH at cycle %llu\n",
                        static_cast<unsigned long long>(i));
            return 1;
        }
    }
    std::printf("co-simulated %llu cycles, outputs identical\n",
                static_cast<unsigned long long>(cycles));

    std::printf("gray histogram (buckets 0..15): ");
    for (uint64_t b = 0; b < 16; ++b)
        std::printf("%llu ",
                    static_cast<unsigned long long>(
                        golden.peekMemory("hist", b).toUint64()));
    std::printf("\nmodeled IPU rate: %.1f kHz on %u tiles\n",
                sim->rateKHz(), sim->machine().tilesUsed());
    std::remove(path);
    return 0;
}
