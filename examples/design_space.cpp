/**
 * @file
 * Design-space exploration, the workflow §6.3 of the paper implies a
 * verification engineer would follow: for one SoC, sweep tiles per
 * chip, chip counts, and partitioning strategies, and print the rate
 * landscape so the best machine configuration can be picked.
 *
 * Run: ./design_space [srN]               (default: sr5)
 */

#include <cstdio>
#include <string>

#include "core/compiler.hh"
#include "designs/designs.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace parendi;

namespace {

rtl::Netlist
byName(const std::string &name)
{
    uint32_t n = static_cast<uint32_t>(std::stoul(name.substr(2)));
    return name[0] == 'l' ? designs::makeLr(n) : designs::makeSr(n);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string name = argc > 1 ? argv[1] : "sr5";

    // Tiles-per-chip sweep on one chip.
    Table tiles({"tiles/chip", "kHz", "t_comp", "max tile KiB"});
    for (uint32_t t : {92u, 184u, 368u, 736u, 1472u}) {
        core::CompilerOptions opt;
        opt.tilesPerChip = t;
        auto sim = core::compile(byName(name), opt);
        tiles.row().cell(uint64_t{t}).cell(sim->rateKHz(), 2)
            .cell(sim->cycleCosts().tComp, 0)
            .cell(static_cast<double>(
                      sim->report().maxTileMemBytes) / 1024.0, 1);
    }
    tiles.print(name + ": tiles-per-chip sweep (1 chip)");

    // Chip-count sweep.
    Table chips({"chips", "kHz", "t_comm_off", "ext KiB"});
    for (uint32_t c : {1u, 2u, 4u}) {
        core::CompilerOptions opt;
        opt.chips = c;
        auto sim = core::compile(byName(name), opt);
        chips.row().cell(uint64_t{c}).cell(sim->rateKHz(), 2)
            .cell(sim->cycleCosts().tCommOff, 0)
            .cell(static_cast<double>(sim->report().extCutBytes) /
                      1024.0, 1);
    }
    chips.print(name + ": chip-count sweep");

    // Strategy matrix.
    Table strat({"single-chip", "multi-chip", "kHz"});
    for (auto single : {partition::SingleChipStrategy::BottomUp,
                        partition::SingleChipStrategy::Hypergraph}) {
        core::CompilerOptions opt;
        opt.single = single;
        auto sim = core::compile(byName(name), opt);
        strat.row()
            .cell(single == partition::SingleChipStrategy::BottomUp
                      ? "bottom-up (B)" : "hypergraph (H)")
            .cell("n/a (1 chip)").cell(sim->rateKHz(), 2);
    }
    for (auto multi : {partition::MultiChipStrategy::Pre,
                       partition::MultiChipStrategy::Post,
                       partition::MultiChipStrategy::None}) {
        core::CompilerOptions opt;
        opt.chips = 4;
        opt.multi = multi;
        auto sim = core::compile(byName(name), opt);
        const char *label =
            multi == partition::MultiChipStrategy::Pre ? "pre"
            : multi == partition::MultiChipStrategy::Post ? "post"
                                                          : "none";
        strat.row().cell("bottom-up (B)").cell(label)
            .cell(sim->rateKHz(), 2);
    }
    strat.print(name + ": strategy matrix");
    return 0;
}
